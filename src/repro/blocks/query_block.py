"""The normalized single-block query representation (paper Section 2).

A :class:`QueryBlock` is the paper's

.. code-block:: sql

    SELECT   Sel(Q)
    FROM     R1(A1), ..., Rn(An)
    WHERE    Conds(Q)
    GROUP BY Groups(Q)
    HAVING   GConds(Q)

with every column of every table occurrence renamed to a globally unique
:class:`~repro.blocks.terms.Column`, so column identity is unambiguous and
self-joins are unproblematic.

The accessors mirror the paper's notation: :meth:`QueryBlock.cols`
(``Cols(Q)``), :meth:`QueryBlock.col_sel` (``ColSel(Q)``),
:meth:`QueryBlock.agg_sel` (``AggSel(Q)``), ``group_by`` (``Groups(Q)``),
``where`` (``Conds(Q)``) and ``having`` (``GConds(Q)``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..errors import NormalizationError
from .exprs import (
    Aggregate,
    Arith,
    Expr,
    aggregates_in,
    columns_in,
    has_aggregate,
    is_row_expr,
    substitute_expr,
)
from .terms import Column, Comparison, Constant


@dataclass(frozen=True)
class Relation:
    """One FROM-clause item: a base table or view occurrence.

    ``name`` is the table or view name; ``columns`` are the occurrence's
    unique column names, positionally matching ``base_names`` (the names in
    the table's schema or the view's output header).
    """

    name: str
    columns: tuple[Column, ...]
    base_names: tuple[str, ...]

    def __post_init__(self):
        if len(self.columns) != len(self.base_names):
            raise NormalizationError(
                f"relation {self.name}: {len(self.columns)} columns but "
                f"{len(self.base_names)} base names"
            )
        if len(set(self.base_names)) != len(self.base_names):
            raise NormalizationError(
                f"relation {self.name}: duplicate base column names"
            )

    def __str__(self) -> str:
        cols = ", ".join(c.name for c in self.columns)
        return f"{self.name}({cols})"

    def base_name_of(self, column: Column) -> str:
        """The schema name behind a unique column of this occurrence."""
        return self.base_names[self.columns.index(column)]

    def column_for(self, base_name: str) -> Column:
        """The unique column for a schema column name of this occurrence."""
        return self.columns[self.base_names.index(base_name)]


@dataclass(frozen=True)
class SelectItem:
    """One SELECT-list entry: an expression and an optional output alias."""

    expr: Expr
    alias: Optional[str] = None

    def __str__(self) -> str:
        if self.alias:
            return f"{self.expr} AS {self.alias}"
        return str(self.expr)

    def output_name(self, position: int) -> str:
        """The column name this item contributes to the result header."""
        if self.alias:
            return self.alias
        if isinstance(self.expr, Column):
            return self.expr.name
        return f"_col{position}"


@dataclass(frozen=True)
class QueryBlock:
    """A single-block SQL query in the paper's normalized form."""

    select: tuple[SelectItem, ...]
    from_: tuple[Relation, ...]
    where: tuple[Comparison, ...] = ()
    group_by: tuple[Column, ...] = ()
    having: tuple[Comparison, ...] = ()
    distinct: bool = False

    def __hash__(self) -> int:
        # Blocks are deeply frozen but large; equality-keyed caches (the
        # canonical-key memo) hash them repeatedly, so compute once.
        try:
            return object.__getattribute__(self, "_cached_hash")
        except AttributeError:
            value = hash(
                (
                    self.select,
                    self.from_,
                    self.where,
                    self.group_by,
                    self.having,
                    self.distinct,
                )
            )
            object.__setattr__(self, "_cached_hash", value)
            return value

    def __getstate__(self) -> dict:
        # str hashes are salted per process (PYTHONHASHSEED), so a pickled
        # ``_cached_hash`` would be wrong in any other interpreter and
        # silently corrupt every dict keyed by blocks there (the planner's
        # substitution memo shipped to pool workers). Recompute on demand.
        state = dict(self.__dict__)
        state.pop("_cached_hash", None)
        return state

    # ------------------------------------------------------------------
    # Paper-notation accessors
    # ------------------------------------------------------------------

    def cols(self) -> frozenset[Column]:
        """``Cols(Q)``: all columns of all FROM-clause occurrences."""
        return frozenset(c for rel in self.from_ for c in rel.columns)

    def col_sel(self) -> tuple[Column, ...]:
        """``ColSel(Q)``: the non-aggregation SELECT columns, in order."""
        return tuple(
            item.expr for item in self.select if isinstance(item.expr, Column)
        )

    def agg_sel(self) -> frozenset[Column]:
        """``AggSel(Q)``: columns aggregated upon in the SELECT clause."""
        out: set[Column] = set()
        for item in self.select:
            for agg in aggregates_in(item.expr):
                out.update(columns_in(agg.arg))
        return frozenset(out)

    def select_aggregates(self) -> tuple[Aggregate, ...]:
        """All aggregate nodes in the SELECT clause, in order."""
        return tuple(
            agg for item in self.select for agg in aggregates_in(item.expr)
        )

    def having_aggregates(self) -> tuple[Aggregate, ...]:
        """All aggregate nodes in the HAVING clause, in order."""
        out: list[Aggregate] = []
        for atom in self.having:
            for side in (atom.left, atom.right):
                out.extend(aggregates_in(side))
        return tuple(out)

    def all_aggregates(self) -> tuple[Aggregate, ...]:
        """Aggregates appearing anywhere (SELECT then HAVING)."""
        return self.select_aggregates() + self.having_aggregates()

    @property
    def is_conjunctive(self) -> bool:
        """True for a conjunctive query: no grouping, aggregation or HAVING."""
        return (
            not self.group_by
            and not self.having
            and not any(has_aggregate(i.expr) for i in self.select)
        )

    @property
    def is_aggregation(self) -> bool:
        """True for an aggregation query (paper Section 2)."""
        return not self.is_conjunctive

    # ------------------------------------------------------------------
    # Structure helpers
    # ------------------------------------------------------------------

    def output_names(self) -> tuple[str, ...]:
        """The result header: one name per SELECT item.

        Unaliased plain columns use their schema (base) name, as SQL does;
        other unaliased expressions get positional placeholders.
        """
        names = []
        for i, item in enumerate(self.select):
            if item.alias:
                names.append(item.alias)
            elif isinstance(item.expr, Column):
                try:
                    names.append(self.relation_of(item.expr).base_name_of(item.expr))
                except NormalizationError:
                    names.append(item.expr.name)
            else:
                names.append(f"_col{i}")
        return tuple(names)

    def relation_of(self, column: Column) -> Relation:
        """The FROM-clause occurrence that owns ``column``."""
        for rel in self.from_:
            if column in rel.columns:
                return rel
        raise NormalizationError(f"column {column} not in any FROM relation")

    def where_columns(self) -> frozenset[Column]:
        """Columns mentioned in the WHERE clause."""
        out: set[Column] = set()
        for atom in self.where:
            for side in (atom.left, atom.right):
                out.update(columns_in(side))
        return frozenset(out)

    def substitute(self, mapping: dict[Column, Column]) -> "QueryBlock":
        """Rename columns throughout the block (FROM occurrences included)."""
        return QueryBlock(
            select=tuple(
                SelectItem(substitute_expr(i.expr, mapping), i.alias)
                for i in self.select
            ),
            from_=tuple(
                Relation(
                    r.name,
                    tuple(mapping.get(c, c) for c in r.columns),
                    r.base_names,
                )
                for r in self.from_
            ),
            where=tuple(a.substitute(mapping) for a in self.where),
            group_by=tuple(mapping.get(c, c) for c in self.group_by),
            having=tuple(
                Comparison(
                    substitute_expr(a.left, mapping),
                    a.op,
                    substitute_expr(a.right, mapping),
                )
                for a in self.having
            ),
            distinct=self.distinct,
        )

    def with_(self, **changes) -> "QueryBlock":
        """A copy with the given fields replaced."""
        return replace(self, **changes)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def validate(self) -> "QueryBlock":
        """Check SQL validity rules; return self for chaining.

        Raises :class:`NormalizationError` on violation.
        """
        if not self.select:
            raise NormalizationError("empty SELECT list")
        if not self.from_:
            raise NormalizationError("empty FROM clause")

        all_cols: set[Column] = set()
        for rel in self.from_:
            for col in rel.columns:
                if col in all_cols:
                    raise NormalizationError(
                        f"column name {col} used by two FROM occurrences"
                    )
                all_cols.add(col)

        def check_known(expr: Expr, clause: str):
            for col in columns_in(expr):
                if col not in all_cols:
                    raise NormalizationError(
                        f"{clause} references unknown column {col}"
                    )

        for item in self.select:
            check_known(item.expr, "SELECT")
        for atom in self.where:
            for side in (atom.left, atom.right):
                if not isinstance(side, (Column, Constant)):
                    raise NormalizationError(
                        f"WHERE predicate side must be a column or constant,"
                        f" got {side}"
                    )
                check_known(side, "WHERE")
        for col in self.group_by:
            check_known(col, "GROUP BY")
        for atom in self.having:
            for side in (atom.left, atom.right):
                if not isinstance(side, (Column, Constant, Arith, Aggregate)):
                    raise NormalizationError(f"bad HAVING side: {side}")
                check_known(side, "HAVING")

        if len(set(self.group_by)) != len(self.group_by):
            raise NormalizationError("duplicate GROUP BY column")

        grouped = self._uses_grouping()
        if grouped:
            allowed = set(self.group_by)
            for item in self.select:
                self._check_group_expr(item.expr, allowed, "SELECT")
            for atom in self.having:
                self._check_group_expr(atom.left, allowed, "HAVING")
                self._check_group_expr(atom.right, allowed, "HAVING")
        elif self.having:
            raise NormalizationError("HAVING requires grouping or aggregation")
        for item in self.select:
            for agg in aggregates_in(item.expr):
                if not is_row_expr(agg.arg):
                    raise NormalizationError(
                        f"nested aggregate in {agg}"
                    )
        return self

    def _uses_grouping(self) -> bool:
        return bool(
            self.group_by
            or self.having
            or any(has_aggregate(i.expr) for i in self.select)
        )

    def _check_group_expr(self, expr: Expr, allowed: set[Column], clause: str):
        """Bare columns outside aggregates must be grouping columns."""
        if isinstance(expr, Column):
            if expr not in allowed:
                raise NormalizationError(
                    f"{clause} column {expr} is neither aggregated nor in "
                    f"GROUP BY"
                )
        elif isinstance(expr, Arith):
            self._check_group_expr(expr.left, allowed, clause)
            self._check_group_expr(expr.right, allowed, clause)
        elif isinstance(expr, Aggregate):
            if not is_row_expr(expr.arg):
                raise NormalizationError(f"nested aggregate in {expr}")

    # ------------------------------------------------------------------

    def __str__(self) -> str:
        parts = ["SELECT "]
        if self.distinct:
            parts.append("DISTINCT ")
        parts.append(", ".join(str(i) for i in self.select))
        parts.append(" FROM " + ", ".join(str(r) for r in self.from_))
        if self.where:
            parts.append(" WHERE " + " AND ".join(str(a) for a in self.where))
        if self.group_by:
            parts.append(
                " GROUP BY " + ", ".join(c.name for c in self.group_by)
            )
        if self.having:
            parts.append(
                " HAVING " + " AND ".join(str(a) for a in self.having)
            )
        return "".join(parts)


@dataclass(frozen=True)
class ViewDef:
    """A named view: its definition block and output column names."""

    name: str
    block: QueryBlock
    output_names: tuple[str, ...] = field(default=())

    def __post_init__(self):
        if not self.output_names:
            object.__setattr__(
                self, "output_names", self.block.output_names()
            )
        if len(self.output_names) != len(self.block.select):
            raise NormalizationError(
                f"view {self.name}: {len(self.output_names)} output names "
                f"for {len(self.block.select)} SELECT items"
            )
        if len(set(self.output_names)) != len(self.output_names):
            raise NormalizationError(
                f"view {self.name}: duplicate output column names "
                f"{self.output_names}; add aliases"
            )

    def __str__(self) -> str:
        cols = ", ".join(self.output_names)
        return f"{self.name}({cols}) AS {self.block}"


"""Nested queries: derived tables in the FROM clause (paper Section 7).

"We are currently extending our work in several ways, including
considering the view usage problem for arbitrary nested queries." This
module implements the FROM-subquery fragment:

* ``parse_nested_query`` normalizes ``(SELECT ...) AS t`` items into
  *query-local views* and returns a :class:`NestedQuery` — the outer
  single block plus the local view definitions (recursively resolved);
* :meth:`NestedQuery.flatten` unfolds the *conjunctive* local views back
  into the outer block (the Section 7 single-block transformation),
  leaving aggregation subqueries as view references;
* ``nested_to_sql`` prints the whole thing back as standard SQL with
  inline subqueries.

Execution uses the engine's ``extra_views`` mechanism; rewriting support
lives in :meth:`repro.core.rewriter.RewriteEngine.rewrite_nested`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Union

from ..errors import NormalizationError
from ..sqlparser.ast import DerivedTable, SelectStmt, TableRef
from ..sqlparser.parser import parse_select
from ..sqlparser.printer import print_select
from .query_block import QueryBlock, ViewDef

if TYPE_CHECKING:
    from ..catalog.schema import Catalog


@dataclass(frozen=True)
class NestedQuery:
    """An outer block plus definitions for its derived tables.

    ``local_views`` are ordered so that each definition only references
    earlier locals (or catalog relations).
    """

    block: QueryBlock
    local_views: tuple[ViewDef, ...] = ()

    def local_map(self) -> dict[str, ViewDef]:
        return {view.name: view for view in self.local_views}

    def with_locals_registered(self, catalog: "Catalog") -> "Catalog":
        """A catalog copy that also knows the local views."""
        working = catalog.copy()
        for view in self.local_views:
            working.add_view(view)
        return working

    def flatten(self, catalog: "Catalog") -> "NestedQuery":
        """Unfold conjunctive local views into the outer block.

        Aggregation-defined derived tables cannot be flattened and stay
        as local views (possibly referenced by the flattened block).
        """
        from .unfold import unfold_views

        working = self.with_locals_registered(catalog)
        local_names = {view.name for view in self.local_views}
        flat = unfold_views(self.block, working, only=local_names)
        # Flatten inside the surviving locals too (a conjunctive local
        # under an aggregation local).
        survivors = []
        for view in self.local_views:
            body = unfold_views(view.block, working, only=local_names)
            survivors.append(ViewDef(view.name, body, view.output_names))
        referenced = _referenced_locals(flat, survivors)
        return NestedQuery(
            block=flat,
            local_views=tuple(
                v for v in survivors if v.name in referenced
            ),
        )


def _referenced_locals(
    block: QueryBlock, locals_: list[ViewDef]
) -> set[str]:
    """Local views transitively reachable from ``block``."""
    by_name = {view.name: view for view in locals_}
    seen: set[str] = set()
    frontier = [rel.name for rel in block.from_]
    while frontier:
        name = frontier.pop()
        if name in seen or name not in by_name:
            continue
        seen.add(name)
        frontier.extend(
            rel.name for rel in by_name[name].block.from_
        )
    return seen


def normalize_nested(
    stmt: SelectStmt, catalog: "Catalog"
) -> NestedQuery:
    """Normalize a statement whose FROM clause may hold derived tables."""
    from .normalize import normalize_select

    working = catalog.copy()
    locals_: list[ViewDef] = []
    counter = [0]

    def walk(select: SelectStmt) -> SelectStmt:
        new_from = []
        for item in select.from_tables:
            if isinstance(item, DerivedTable):
                inner_stmt = walk(item.select)
                inner_block = normalize_select(inner_stmt, working)
                counter[0] += 1
                name = f"_subquery_{item.alias}_{counter[0]}"
                try:
                    view = ViewDef(name, inner_block)
                except NormalizationError as error:
                    raise NormalizationError(
                        f"derived table {item.alias!r}: {error} "
                        f"(alias the SELECT items)"
                    ) from None
                working.add_view(view)
                locals_.append(view)
                new_from.append(TableRef(name, item.alias))
            else:
                new_from.append(item)
        return SelectStmt(
            items=select.items,
            from_tables=tuple(new_from),
            where=select.where,
            group_by=select.group_by,
            having=select.having,
            distinct=select.distinct,
        )

    outer = normalize_select(walk(stmt), working)
    return NestedQuery(block=outer, local_views=tuple(locals_))


def parse_nested_query(sql: str, catalog: "Catalog") -> NestedQuery:
    """Parse SQL that may contain FROM-clause subqueries."""
    return normalize_nested(parse_select(sql), catalog)


def nested_to_sql(nested: NestedQuery) -> str:
    """Render a NestedQuery as SQL with inline derived tables."""
    from .to_sql import block_to_ast

    by_name = nested.local_map()

    def inline(block: QueryBlock) -> SelectStmt:
        stmt = block_to_ast(block)
        new_from = []
        for i, ref in enumerate(stmt.from_tables):
            if isinstance(ref, TableRef) and ref.name in by_name:
                inner = inline(by_name[ref.name].block)
                # Re-alias the subquery's outputs to the local view's
                # declared names so outer references resolve.
                view = by_name[ref.name]
                items = tuple(
                    type(item)(item.expr, alias)
                    for item, alias in zip(inner.items, view.output_names)
                )
                inner = SelectStmt(
                    items=items,
                    from_tables=inner.from_tables,
                    where=inner.where,
                    group_by=inner.group_by,
                    having=inner.having,
                    distinct=inner.distinct,
                )
                # The outer block's column references are qualified by
                # the occurrence's rendering name; keep it as the alias.
                alias = ref.alias or ref.name
                new_from.append(DerivedTable(inner, alias))
            else:
                new_from.append(ref)
        return SelectStmt(
            items=stmt.items,
            from_tables=tuple(new_from),
            where=stmt.where,
            group_by=stmt.group_by,
            having=stmt.having,
            distinct=stmt.distinct,
        )

    return print_select(inline(nested.block))


QueryLike = Union[str, QueryBlock, NestedQuery]

"""Terms and comparison predicates of the paper's query language.

The paper (Section 2) restricts WHERE and HAVING conditions to conjunctions
of predicates ``A op B`` where ``A`` and ``B`` are column names, aggregation
columns or constants, and ``op`` is one of ``<, <=, =, >=, >`` (we also
support ``<>``, which the closure machinery handles soundly).

A :class:`Column` is a *unique* column name in the sense of the paper's
renamed notation: ``R1(A_1, B_1), R1(A_2, B_2)`` gives every table
occurrence its own fresh column names, so equality of :class:`Column`
objects is equality of the underlying query column.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union

#: Values a constant may take. ``bool`` is excluded on purpose: SQL's
#: three-valued logic is outside the paper's language.
ConstValue = Union[int, float, str]


@dataclass(frozen=True, order=True)
class Column:
    """A uniquely named query column (paper Section 2 naming convention)."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Constant:
    """A literal constant appearing in a predicate or SELECT list."""

    value: ConstValue

    def __str__(self) -> str:
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        return str(self.value)

    @property
    def is_numeric(self) -> bool:
        return isinstance(self.value, (int, float))


#: A predicate argument: a column or a constant.
Term = Union[Column, Constant]


class Op(enum.Enum):
    """Comparison operators of the paper's predicate language."""

    LT = "<"
    LE = "<="
    EQ = "="
    GE = ">="
    GT = ">"
    NE = "<>"

    def __str__(self) -> str:
        return self.value

    @property
    def flipped(self) -> "Op":
        """The operator with its arguments swapped: ``A op B == B op' A``."""
        return _FLIP[self]

    @property
    def negated(self) -> "Op":
        """The operator of the complementary predicate."""
        return _NEGATE[self]

    @property
    def is_order(self) -> bool:
        """True for the four inequality (order) operators."""
        return self in (Op.LT, Op.LE, Op.GE, Op.GT)

    def holds(self, left: ConstValue, right: ConstValue) -> bool:
        """Evaluate the operator on two constant values."""
        if self is Op.EQ:
            return left == right
        if self is Op.NE:
            return left != right
        if self is Op.LT:
            return left < right
        if self is Op.LE:
            return left <= right
        if self is Op.GE:
            return left >= right
        return left > right


_FLIP = {
    Op.LT: Op.GT,
    Op.LE: Op.GE,
    Op.EQ: Op.EQ,
    Op.GE: Op.LE,
    Op.GT: Op.LT,
    Op.NE: Op.NE,
}

_NEGATE = {
    Op.LT: Op.GE,
    Op.LE: Op.GT,
    Op.EQ: Op.NE,
    Op.GE: Op.LT,
    Op.GT: Op.LE,
    Op.NE: Op.EQ,
}


@dataclass(frozen=True)
class Comparison:
    """An atomic predicate ``left op right``.

    In a WHERE clause both sides are :data:`Term`; in a HAVING clause a side
    may also be an aggregate or arithmetic group expression (see
    :mod:`repro.blocks.exprs`), so the attribute types are intentionally
    loose here and validated by :class:`repro.blocks.query_block.QueryBlock`.
    """

    left: object
    op: Op
    right: object

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"

    @property
    def flipped(self) -> "Comparison":
        """The same predicate with its sides swapped."""
        return Comparison(self.right, self.op.flipped, self.left)

    def normalized(self) -> "Comparison":
        """A canonical orientation: GT/GE become LT/LE; for symmetric
        operators the lexicographically smaller side comes first."""
        atom = self
        if atom.op in (Op.GT, Op.GE):
            atom = atom.flipped
        if atom.op in (Op.EQ, Op.NE) and _term_key(atom.right) < _term_key(atom.left):
            atom = atom.flipped
        return atom

    def substitute(self, mapping: dict) -> "Comparison":
        """Replace columns per ``mapping`` (columns absent stay unchanged)."""
        return Comparison(
            substitute_term(self.left, mapping),
            self.op,
            substitute_term(self.right, mapping),
        )


def _term_key(term: object) -> tuple:
    """A total order over terms used only for canonicalization."""
    if isinstance(term, Column):
        return (0, term.name)
    if isinstance(term, Constant):
        return (1, str(type(term.value)), str(term.value))
    return (2, str(term))


def substitute_term(term: object, mapping: dict) -> object:
    """Apply a column substitution to a term (or pass through constants)."""
    if isinstance(term, Column):
        return mapping.get(term, term)
    return term

"""Fresh unique-column-name allocation (paper Section 2 convention).

The paper renames every column of every table occurrence to a fresh name
(``R(A1, B1), R(A2, B2)``). We use ``base$k`` with a per-allocator counter;
``$`` cannot appear in parsed SQL identifiers' *base* position, so generated
names never collide with user-written ones after the first occurrence.
"""

from __future__ import annotations

from typing import Iterable

from .terms import Column


class FreshNames:
    """Allocates unique column names, avoiding a set of taken names."""

    def __init__(self, taken: Iterable[str] = ()):
        self._taken: set[str] = set(taken)
        self._counters: dict[str, int] = {}

    def column(self, base: str) -> Column:
        """A fresh column named ``base$k`` for the smallest free ``k``."""
        k = self._counters.get(base, 0) + 1
        name = f"{base}${k}"
        while name in self._taken:
            k += 1
            name = f"{base}${k}"
        self._counters[base] = k
        self._taken.add(name)
        return Column(name)

    def columns(self, bases: Iterable[str]) -> tuple[Column, ...]:
        return tuple(self.column(base) for base in bases)

    def reserve(self, names: Iterable[str]) -> None:
        self._taken.update(names)


def base_of(column: Column) -> str:
    """The base (pre-renaming) name of a generated column."""
    name = column.name
    dollar = name.rfind("$")
    if dollar > 0 and name[dollar + 1 :].isdigit():
        return name[:dollar]
    return name

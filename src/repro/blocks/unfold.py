"""View unfolding: multi-block queries to single-block (paper Section 7).

"Often, multi-block SQL queries (e.g., queries with view tables in the
FROM clause) can be transformed to single-block queries ... In such
cases, our techniques can also be applied."

A query whose FROM clause mentions a *conjunctive* view can be flattened:
the view occurrence is replaced by the view's own FROM tables (with fresh
column names), references to the view's outputs become references to the
defining columns, and the view's conditions join the WHERE clause. Under
multiset semantics this is an equivalence (the view contributes exactly
the multiset its definition computes).

Aggregation views cannot be flattened into a single block and are left in
place.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..errors import NormalizationError
from .exprs import substitute_expr
from .naming import FreshNames, base_of
from .query_block import QueryBlock, Relation, SelectItem, ViewDef
from .terms import Column, Comparison

if TYPE_CHECKING:
    from ..catalog.schema import Catalog


def _unfoldable(view: ViewDef) -> bool:
    if not view.block.is_conjunctive or view.block.distinct:
        return False
    return all(
        isinstance(item.expr, Column) for item in view.block.select
    )


def unfold_once(
    block: QueryBlock,
    catalog: "Catalog",
    only: Optional[set[str]] = None,
) -> Optional[QueryBlock]:
    """Unfold the first unfoldable view occurrence; None when there is
    none. ``only`` restricts unfolding to the named views."""
    for position, rel in enumerate(block.from_):
        if only is not None and rel.name not in only:
            continue
        if not catalog.is_view(rel.name):
            continue
        view = catalog.view(rel.name)
        if not _unfoldable(view):
            continue
        return _unfold_at(block, position, view)
    return None


def unfold_views(
    block: QueryBlock,
    catalog: "Catalog",
    only: Optional[set[str]] = None,
) -> QueryBlock:
    """Unfold every conjunctive-view occurrence, recursively.

    View definitions cannot be cyclic (a catalog only accepts views over
    already-known names), so this terminates. ``only`` restricts
    unfolding to the named views (used for query-local derived tables).
    """
    current = block
    while True:
        unfolded = unfold_once(current, catalog, only)
        if unfolded is None:
            return current
        current = unfolded


def _unfold_at(
    block: QueryBlock, position: int, view: ViewDef
) -> QueryBlock:
    rel = block.from_[position]
    namer = FreshNames(c.name for c in block.cols())

    # Fresh copy of the view body.
    theta: dict[Column, Column] = {
        col: namer.column(base_of(col)) for col in view.block.cols()
    }
    body = view.block.substitute(theta)

    # Map the occurrence's output columns onto the defining columns.
    sigma: dict[Column, Column] = {}
    for out_col, item in zip(rel.columns, body.select):
        expr = item.expr
        if not isinstance(expr, Column):
            raise NormalizationError(
                f"cannot unfold non-column output of view {view.name}"
            )
        sigma[out_col] = expr

    new_from = (
        block.from_[:position] + body.from_ + block.from_[position + 1 :]
    )

    def fix(expr):
        return substitute_expr(expr, sigma)

    return QueryBlock(
        select=tuple(
            SelectItem(fix(item.expr), item.alias) for item in block.select
        ),
        from_=new_from,
        where=tuple(a.substitute(sigma) for a in block.where) + body.where,
        group_by=tuple(sigma.get(c, c) for c in block.group_by),
        having=tuple(
            Comparison(fix(a.left), a.op, fix(a.right)) for a in block.having
        ),
        distinct=block.distinct,
    ).validate()

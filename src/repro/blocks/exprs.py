"""Aggregate and arithmetic expressions for SELECT and HAVING.

The paper's input language allows a SELECT item to be a plain column or
``AGG(Y)`` for a column ``Y``. The *output* of the rewriting algorithms is
richer: step S4'/S5' and the AVG decomposition (Section 4.4) produce items
such as ``SUM(N * E)``, ``Cnt_Va * SUM(E)`` and ``SUM(S) / SUM(N)``. This
module provides the small expression algebra covering both.

Two levels of expression exist:

* *row level* — evaluated once per core-table row: columns, constants and
  arithmetic over them (appears inside an aggregate's argument);
* *group level* — evaluated once per group: grouping columns, constants,
  aggregates over row expressions, and arithmetic over those.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, Union

from .terms import Column, Constant


class AggFunc(enum.Enum):
    """The SQL aggregate functions studied by the paper."""

    MIN = "MIN"
    MAX = "MAX"
    SUM = "SUM"
    COUNT = "COUNT"
    AVG = "AVG"

    def __str__(self) -> str:
        return self.value

    @property
    def is_duplicate_sensitive(self) -> bool:
        """True when duplicate rows change the aggregate's value.

        SUM, COUNT and AVG depend on tuple multiplicities; MIN and MAX do
        not (Section 4's discussion of lost multiplicities).
        """
        return self in (AggFunc.SUM, AggFunc.COUNT, AggFunc.AVG)


class ArithOp(enum.Enum):
    """Binary arithmetic operators permitted in expressions."""

    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "/"

    def __str__(self) -> str:
        return self.value

    def apply(self, left, right):
        if self is ArithOp.ADD:
            return left + right
        if self is ArithOp.SUB:
            return left - right
        if self is ArithOp.MUL:
            return left * right
        return left / right


@dataclass(frozen=True)
class Arith:
    """Binary arithmetic node; children may be row- or group-level."""

    op: ArithOp
    left: "Expr"
    right: "Expr"

    def __str__(self) -> str:
        return f"({_render(self.left)} {self.op} {_render(self.right)})"


@dataclass(frozen=True)
class Aggregate:
    """``func(arg)`` over the rows of a group.

    ``arg`` is a row-level expression; the paper's language uses a bare
    column, while rewritings may produce products such as ``SUM(N * E)``.
    """

    func: AggFunc
    arg: "Expr"

    def __str__(self) -> str:
        return f"{self.func}({_render(self.arg)})"


#: Any expression node.
Expr = Union[Column, Constant, Arith, Aggregate]


def _render(expr: Expr) -> str:
    return str(expr)


def columns_in(expr: Expr) -> Iterator[Column]:
    """Yield every column mentioned anywhere in ``expr`` (with repeats)."""
    if isinstance(expr, Column):
        yield expr
    elif isinstance(expr, Arith):
        yield from columns_in(expr.left)
        yield from columns_in(expr.right)
    elif isinstance(expr, Aggregate):
        yield from columns_in(expr.arg)


def aggregates_in(expr: Expr) -> Iterator[Aggregate]:
    """Yield every aggregate node in ``expr``."""
    if isinstance(expr, Aggregate):
        yield expr
    elif isinstance(expr, Arith):
        yield from aggregates_in(expr.left)
        yield from aggregates_in(expr.right)


def has_aggregate(expr: Expr) -> bool:
    """True when ``expr`` contains an aggregate node."""
    return next(aggregates_in(expr), None) is not None


def is_row_expr(expr: Expr) -> bool:
    """True when ``expr`` is valid per-row (no aggregates anywhere)."""
    if isinstance(expr, (Column, Constant)):
        return True
    if isinstance(expr, Arith):
        return is_row_expr(expr.left) and is_row_expr(expr.right)
    return False


def substitute_expr(expr: Expr, mapping: dict) -> Expr:
    """Apply a column substitution throughout an expression tree."""
    if isinstance(expr, Column):
        return mapping.get(expr, expr)
    if isinstance(expr, Constant):
        return expr
    if isinstance(expr, Arith):
        return Arith(
            expr.op,
            substitute_expr(expr.left, mapping),
            substitute_expr(expr.right, mapping),
        )
    if isinstance(expr, Aggregate):
        return Aggregate(expr.func, substitute_expr(expr.arg, mapping))
    raise TypeError(f"not an expression: {expr!r}")


def mul(left: Expr, right: Expr) -> Arith:
    """Convenience constructor for ``left * right``."""
    return Arith(ArithOp.MUL, left, right)


def div(left: Expr, right: Expr) -> Arith:
    """Convenience constructor for ``left / right``."""
    return Arith(ArithOp.DIV, left, right)

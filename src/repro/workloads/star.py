"""A retail star schema used by the multi-view and scaling benchmarks.

One fact table (``Sales``) joined to three dimensions, a family of
summary views at different granularities, and a batch of analyst queries
— the "data warehousing / summary table" setting of the paper's
introduction and of [JMS95]'s chronicle systems.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..blocks.normalize import parse_query, parse_view
from ..blocks.query_block import QueryBlock, ViewDef
from ..catalog.schema import Catalog, table
from ..engine.database import Database

VIEW_DEFINITIONS = {
    # revenue + volume per (product, month): fine-grained summary
    "Sales_By_Product_Month": """
        CREATE VIEW Sales_By_Product_Month
            (Prod_Id, Month, Revenue, Units, N) AS
        SELECT Prod_Id, Month, SUM(Amount), SUM(Qty), COUNT(Sale_Id)
        FROM Sales
        GROUP BY Prod_Id, Month
    """,
    # revenue per (store, month)
    "Sales_By_Store_Month": """
        CREATE VIEW Sales_By_Store_Month (Store_Id, Month, Revenue, N) AS
        SELECT Store_Id, Month, SUM(Amount), COUNT(Sale_Id)
        FROM Sales
        GROUP BY Store_Id, Month
    """,
    # joined summary: revenue per (category, month)
    "Sales_By_Category_Month": """
        CREATE VIEW Sales_By_Category_Month (Category, Month, Revenue, N) AS
        SELECT Category, Month, SUM(Amount), COUNT(Sale_Id)
        FROM Sales, Product
        WHERE Sales.Prod_Id = Product.Prod_Id
        GROUP BY Category, Month
    """,
}

QUERIES = {
    # answerable from Sales_By_Product_Month by coalescing months
    "yearly_product_revenue": """
        SELECT Prod_Id, SUM(Amount)
        FROM Sales
        GROUP BY Prod_Id
    """,
    # answerable from Sales_By_Product_Month joined to Product
    "category_revenue": """
        SELECT Category, SUM(Amount)
        FROM Sales, Product
        WHERE Sales.Prod_Id = Product.Prod_Id
        GROUP BY Category
    """,
    # answerable from Sales_By_Store_Month with a residual predicate
    "store_december": """
        SELECT Store_Id, SUM(Amount)
        FROM Sales
        WHERE Month = 12
        GROUP BY Store_Id
    """,
    # call volume: COUNT recovered from the view's N column
    "monthly_volume": """
        SELECT Month, COUNT(Sale_Id)
        FROM Sales
        GROUP BY Month
    """,
    # not answerable from the summaries (needs per-day detail)
    "daily_detail": """
        SELECT Day, SUM(Amount)
        FROM Sales
        GROUP BY Day
    """,
}


def star_catalog(n_sales: int = 10_000) -> Catalog:
    return Catalog(
        [
            table(
                "Sales",
                [
                    "Sale_Id",
                    "Prod_Id",
                    "Store_Id",
                    "Day",
                    "Month",
                    "Qty",
                    "Amount",
                ],
                key=["Sale_Id"],
                row_count=n_sales,
                distinct={
                    "Prod_Id": 50,
                    "Store_Id": 20,
                    "Day": 28,
                    "Month": 12,
                    "Qty": 10,
                    "Amount": 1000,
                },
            ),
            table(
                "Product",
                ["Prod_Id", "Category"],
                key=["Prod_Id"],
                row_count=50,
            ),
            table(
                "Store",
                ["Store_Id", "Region"],
                key=["Store_Id"],
                row_count=20,
            ),
        ]
    )


@dataclass
class StarWorkload:
    catalog: Catalog
    tables: dict[str, list[tuple]]
    views: dict[str, ViewDef]
    queries: dict[str, QueryBlock]

    def database(self) -> Database:
        return Database(self.catalog, self.tables)


def generate(
    n_sales: int = 10_000,
    n_products: int = 50,
    n_stores: int = 20,
    n_categories: int = 8,
    seed: int = 7,
    view_names: tuple[str, ...] = tuple(VIEW_DEFINITIONS),
) -> StarWorkload:
    """Generate the star warehouse with the requested summary views."""
    rng = random.Random(seed)
    catalog = star_catalog(n_sales)

    products = [(p, f"cat_{p % n_categories}") for p in range(n_products)]
    stores = [(s, f"region_{s % 4}") for s in range(n_stores)]
    sales = [
        (
            i,
            rng.randrange(n_products),
            rng.randrange(n_stores),
            rng.randint(1, 28),
            rng.randint(1, 12),
            rng.randint(1, 10),
            rng.randint(1, 1000),
        )
        for i in range(n_sales)
    ]

    views = {}
    for name in view_names:
        view = parse_view(VIEW_DEFINITIONS[name], catalog)
        catalog.add_view(view)
        views[name] = view
    queries = {
        name: parse_query(sql, catalog) for name, sql in QUERIES.items()
    }
    return StarWorkload(
        catalog=catalog,
        tables={"Sales": sales, "Product": products, "Store": stores},
        views=views,
        queries=queries,
    )

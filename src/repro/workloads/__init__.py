"""Synthetic workload generators (telephony warehouse, star schema,
random query/view pairs for property testing)."""

from . import random_queries, star, telephony

__all__ = ["random_queries", "star", "telephony"]

"""Random queries, views and schemas for property-based testing.

The integration test suite draws seeded random (query, view) pairs; every
time the rewriter claims usability, the resulting rewriting is checked for
multiset-equivalence on random databases. Small column counts and tiny
value domains maximize collisions, which is where multiset semantics,
grouping and residual conditions can go wrong.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..blocks.exprs import AggFunc, Aggregate
from ..blocks.naming import FreshNames
from ..blocks.query_block import QueryBlock, Relation, SelectItem, ViewDef
from ..blocks.terms import Column, Comparison, Constant, Op
from ..catalog.schema import Catalog, table
from ..errors import NormalizationError

_OPS = [Op.EQ, Op.EQ, Op.EQ, Op.LT, Op.LE, Op.GE, Op.GT, Op.NE]
_AGGS = [AggFunc.SUM, AggFunc.COUNT, AggFunc.MIN, AggFunc.MAX, AggFunc.AVG]


def random_catalog(rng: random.Random, with_keys: bool = False) -> Catalog:
    """Two or three tables with 2-4 columns each (optionally keyed)."""
    tables = []
    for t in range(rng.randint(2, 3)):
        n_cols = rng.randint(2, 4)
        columns = [f"c{j}" for j in range(n_cols)]
        key = ["c0"] if with_keys and rng.random() < 0.7 else None
        tables.append(table(f"T{t}", columns, key=key, row_count=100))
    return Catalog(tables)


def _random_relations(
    catalog: Catalog, rng: random.Random, max_tables: int
) -> tuple[Relation, ...]:
    names = list(catalog.tables)
    chosen = [
        rng.choice(names) for _ in range(rng.randint(1, max_tables))
    ]
    namer = FreshNames()
    out = []
    for name in chosen:
        base = catalog.columns_of(name)
        out.append(Relation(name, namer.columns(base), tuple(base)))
    return tuple(out)


def _random_atoms(
    columns: list[Column], rng: random.Random, max_atoms: int
) -> tuple[Comparison, ...]:
    atoms = []
    for _ in range(rng.randint(0, max_atoms)):
        left = rng.choice(columns)
        if rng.random() < 0.35:
            right: object = Constant(rng.randint(0, 3))
        else:
            right = rng.choice(columns)
            if right == left:
                right = Constant(rng.randint(0, 3))
        atoms.append(Comparison(left, rng.choice(_OPS), right))
    return tuple(atoms)


def random_block(
    catalog: Catalog,
    rng: random.Random,
    aggregation: Optional[bool] = None,
    max_tables: int = 3,
    max_atoms: int = 3,
    allow_having: bool = True,
) -> QueryBlock:
    """A random valid query block over the catalog.

    ``aggregation`` forces (True) or forbids (False) grouping/aggregation;
    ``None`` flips a coin. Retries internally until validation passes.
    """
    for _attempt in range(100):
        relations = _random_relations(catalog, rng, max_tables)
        columns = [c for rel in relations for c in rel.columns]
        where = _random_atoms(columns, rng, max_atoms)
        wants_agg = (
            aggregation if aggregation is not None else rng.random() < 0.5
        )
        if wants_agg:
            block = _random_aggregation(
                relations, columns, where, rng, allow_having
            )
        else:
            n_sel = rng.randint(1, min(3, len(columns)))
            block = QueryBlock(
                select=tuple(
                    SelectItem(c) for c in rng.sample(columns, n_sel)
                ),
                from_=relations,
                where=where,
            )
        try:
            return block.validate()
        except NormalizationError:
            continue
    raise RuntimeError("could not generate a valid random block")


def _random_aggregation(
    relations: tuple[Relation, ...],
    columns: list[Column],
    where: tuple[Comparison, ...],
    rng: random.Random,
    allow_having: bool,
) -> QueryBlock:
    n_group = rng.randint(0, min(2, len(columns)))
    group_by = tuple(rng.sample(columns, n_group))
    select: list[SelectItem] = [SelectItem(c) for c in group_by]
    aggregates = []
    for i in range(rng.randint(1, 2)):
        agg = Aggregate(rng.choice(_AGGS), rng.choice(columns))
        aggregates.append(agg)
        select.append(SelectItem(agg, alias=f"agg{i}"))
    having: tuple[Comparison, ...] = ()
    if allow_having and group_by and rng.random() < 0.4:
        subject: object = rng.choice(aggregates + list(group_by))
        having = (
            Comparison(subject, rng.choice(_OPS), Constant(rng.randint(0, 6))),
        )
    return QueryBlock(
        select=tuple(select),
        from_=relations,
        where=where,
        group_by=group_by,
        having=having,
    )


def random_view(
    catalog: Catalog,
    rng: random.Random,
    name: str,
    aggregation: Optional[bool] = None,
    max_tables: int = 2,
) -> ViewDef:
    """A random view with generated distinct output names."""
    block = random_block(
        catalog,
        rng,
        aggregation=aggregation,
        max_tables=max_tables,
        allow_having=False,
    )
    names = tuple(f"o{i}" for i in range(len(block.select)))
    return ViewDef(name, block, names)


def related_pair(
    catalog: Catalog, rng: random.Random, view_name: str = "V"
) -> tuple[QueryBlock, ViewDef]:
    """A (query, view) pair built to be *plausibly* compatible.

    The view is generated first; the query is derived from the same FROM
    shape with extra predicates over the view's surviving columns, coarser
    grouping and aggregates the view can often answer. Roughly half of
    the generated pairs admit a rewriting, which makes soundness sweeps
    non-vacuous; the rest exercise near-miss rejections.
    """
    for _attempt in range(100):
        relations = _random_relations(catalog, rng, max_tables=2)
        columns = [c for rel in relations for c in rel.columns]
        shared_where = _random_atoms(columns, rng, max_atoms=1)

        group_pool = rng.sample(columns, min(len(columns), rng.randint(1, 3)))
        agg_col = rng.choice(columns)
        view_select: list[SelectItem] = [SelectItem(c) for c in group_pool]
        view_select.append(
            SelectItem(
                Aggregate(rng.choice([AggFunc.SUM, AggFunc.MIN, AggFunc.MAX]), agg_col),
                alias="agg",
            )
        )
        view_select.append(
            SelectItem(Aggregate(AggFunc.COUNT, agg_col), alias="cnt")
        )
        try:
            view_block = QueryBlock(
                select=tuple(view_select),
                from_=relations,
                where=shared_where,
                group_by=tuple(group_pool),
            ).validate()
        except NormalizationError:
            continue

        # Query: same FROM, same (or weaker/stronger) conditions, coarser
        # grouping, compatible aggregates.
        q_groups = tuple(
            c for c in group_pool if rng.random() < 0.6
        )
        q_where = list(shared_where)
        if q_groups and rng.random() < 0.5:
            q_where.append(
                Comparison(
                    rng.choice(q_groups),
                    rng.choice([Op.EQ, Op.LE, Op.GT]),
                    Constant(rng.randint(0, 2)),
                )
            )
        if rng.random() < 0.25 and columns:
            # A near-miss: constrain a column the view may have dropped.
            q_where.append(
                Comparison(rng.choice(columns), Op.EQ, Constant(rng.randint(0, 2)))
            )
        agg_target = agg_col if rng.random() < 0.7 else rng.choice(columns)
        q_func = rng.choice(list(_AGGS))
        q_select = [SelectItem(c) for c in q_groups]
        q_select.append(SelectItem(Aggregate(q_func, agg_target), alias="out"))
        having: tuple[Comparison, ...] = ()
        if q_groups and rng.random() < 0.3:
            having = (
                Comparison(
                    Aggregate(q_func, agg_target),
                    rng.choice([Op.GT, Op.LE]),
                    Constant(rng.randint(0, 5)),
                ),
            )
        try:
            query = QueryBlock(
                select=tuple(q_select),
                from_=relations,
                where=tuple(q_where),
                group_by=q_groups,
                having=having,
            ).validate()
        except NormalizationError:
            continue
        names = tuple(f"o{i}" for i in range(len(view_block.select)))
        return query, ViewDef(view_name, view_block, names)
    raise RuntimeError("could not generate a related pair")


@dataclass
class Scenario:
    """One differential-testing triple: (query, views, database).

    ``catalog`` has every view registered; ``instance`` maps base-table
    names to rows. Reproducible from ``seed`` alone.
    """

    seed: int
    catalog: Catalog
    query: QueryBlock
    views: list[ViewDef]
    instance: dict[str, list[tuple]]


def random_scenario(
    seed: int,
    max_views: int = 3,
    max_rows: int = 6,
    domain: int = 3,
) -> Scenario:
    """A seeded (query, views, database) triple for differential testing.

    The first view comes from :func:`related_pair`, so roughly half the
    scenarios admit at least one rewriting (the harness is not vacuous);
    the remaining views are unconstrained and exercise pruning and
    near-miss rejection. The database instance uses a tiny value domain
    — collisions are what stress multiset semantics and grouping.
    """
    from ..equivalence import random_instance

    rng = random.Random(seed)
    catalog = random_catalog(rng)
    query, primary = related_pair(catalog, rng, view_name="V0")
    views = [primary]
    for i in range(1, rng.randint(1, max_views)):
        views.append(random_view(catalog, rng, f"V{i}", max_tables=2))
    for view in views:
        catalog.add_view(view)
    instance = random_instance(
        catalog, rng, max_rows=max_rows, domain=domain, respect_keys=False
    )
    return Scenario(
        seed=seed,
        catalog=catalog,
        query=query,
        views=views,
        instance=instance,
    )

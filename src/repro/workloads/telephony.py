"""The telephony data warehouse of Example 1.1, as a synthetic workload.

The paper motivates view-based rewriting with a telephone company's
warehouse: a huge ``Calls`` fact table, small ``Customer`` and
``Calling_Plans`` dimensions, and a materialized monthly-earnings summary
``V1`` that is "orders of magnitude smaller than the Calls table". This
module generates that schema and seeded data at any scale, plus the
paper's query Q and view V1 verbatim.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..blocks.normalize import parse_query, parse_view
from ..blocks.query_block import QueryBlock, ViewDef
from ..catalog.schema import Catalog, table
from ..engine.database import Database

#: Example 1.1's query Q: plans that earned less than a threshold in 1995.
QUERY_SQL = """
SELECT Calling_Plans.Plan_Id, Plan_Name, SUM(Charge)
FROM Calls, Calling_Plans
WHERE Calls.Plan_Id = Calling_Plans.Plan_Id AND Year = 1995
GROUP BY Calling_Plans.Plan_Id, Plan_Name
HAVING SUM(Charge) < {threshold}
"""

#: Example 1.1's materialized view V1: monthly earnings per plan.
VIEW_SQL = """
CREATE VIEW V1 (Plan_Id, Plan_Name, Month, Year, Monthly_Earnings) AS
SELECT Calls.Plan_Id, Plan_Name, Month, Year, SUM(Charge)
FROM Calls, Calling_Plans
WHERE Calls.Plan_Id = Calling_Plans.Plan_Id
GROUP BY Calls.Plan_Id, Plan_Name, Month, Year
"""


def telephony_catalog(
    n_customers: int = 100,
    n_plans: int = 8,
    n_calls: int = 10_000,
) -> Catalog:
    """The Example 1.1 schema, with keys and cardinality estimates."""
    return Catalog(
        [
            table(
                "Customer",
                ["Cust_Id", "Cust_Name", "Area_Code", "Phone_Number"],
                key=["Cust_Id"],
                row_count=n_customers,
            ),
            table(
                "Calling_Plans",
                ["Plan_Id", "Plan_Name"],
                key=["Plan_Id"],
                row_count=n_plans,
            ),
            table(
                "Calls",
                [
                    "Call_Id",
                    "Cust_Id",
                    "Plan_Id",
                    "Day",
                    "Month",
                    "Year",
                    "Charge",
                ],
                key=["Call_Id"],
                row_count=n_calls,
                distinct={
                    "Cust_Id": n_customers,
                    "Plan_Id": n_plans,
                    "Day": 28,
                    "Month": 12,
                    "Year": 2,
                    "Charge": 500,
                },
            ),
        ]
    )


@dataclass
class TelephonyWorkload:
    """Generated warehouse: catalog, data, the paper's Q and V1."""

    catalog: Catalog
    tables: dict[str, list[tuple]]
    query: QueryBlock
    view: ViewDef
    threshold: int = 1_000_000
    years: tuple[int, ...] = field(default=(1994, 1995))

    def database(self) -> Database:
        return Database(self.catalog, self.tables)

    @property
    def calls_rows(self) -> int:
        return len(self.tables["Calls"])


def generate(
    n_calls: int = 10_000,
    n_plans: int = 8,
    n_customers: int = 100,
    years: tuple[int, ...] = (1994, 1995),
    threshold: int = 1_000_000,
    seed: int = 42,
) -> TelephonyWorkload:
    """Build the warehouse with a Zipf-ish skew across calling plans.

    Popular plans receive most calls (plan ``p`` gets weight ``1/(p+1)``),
    so monthly summaries vary in size the way real summary tables do.
    """
    rng = random.Random(seed)
    catalog = telephony_catalog(n_customers, n_plans, n_calls)

    customers = [
        (c, f"customer_{c}", 200 + rng.randrange(800), rng.randrange(10**7))
        for c in range(n_customers)
    ]
    plans = [(p, f"plan_{p}") for p in range(n_plans)]
    weights = [1.0 / (p + 1) for p in range(n_plans)]
    calls = []
    for call_id in range(n_calls):
        plan = rng.choices(range(n_plans), weights=weights)[0]
        calls.append(
            (
                call_id,
                rng.randrange(n_customers),
                plan,
                rng.randint(1, 28),
                rng.randint(1, 12),
                rng.choice(years),
                rng.randint(1, 500),
            )
        )

    tables = {
        "Customer": customers,
        "Calling_Plans": plans,
        "Calls": calls,
    }
    query = parse_query(QUERY_SQL.format(threshold=threshold), catalog)
    view = parse_view(VIEW_SQL, catalog)
    catalog.add_view(view)
    return TelephonyWorkload(
        catalog=catalog,
        tables=tables,
        query=query,
        view=view,
        threshold=threshold,
        years=years,
    )

"""Schema metadata: tables, views, keys and functional dependencies."""

from .fds import (
    FunctionalDependency,
    attribute_closure,
    fd,
    implies_fd,
    is_superkey,
    minimize_key,
)
from .schema import Catalog, TableSchema, table

__all__ = [
    "FunctionalDependency",
    "attribute_closure",
    "fd",
    "implies_fd",
    "is_superkey",
    "minimize_key",
    "Catalog",
    "TableSchema",
    "table",
]

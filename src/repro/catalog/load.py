"""Load a catalog from a SQL script (CREATE TABLE / CREATE VIEW).

The entry point for file- and CLI-driven use: a ';'-separated script of
DDL statements builds a :class:`Catalog`; trailing SELECT statements are
returned as parsed queries.
"""

from __future__ import annotations

from typing import Optional

from ..blocks.normalize import normalize_select
from ..blocks.query_block import QueryBlock, ViewDef
from ..errors import SchemaError
from ..sqlparser.ast import CreateTableStmt, CreateViewStmt, SelectStmt
from ..sqlparser.parser import parse_script
from .schema import Catalog, TableSchema, table


def table_from_statement(stmt: CreateTableStmt, row_count: int = 1000) -> TableSchema:
    """Convert a parsed CREATE TABLE to a schema object."""
    return table(
        stmt.name,
        stmt.columns,
        key=stmt.primary_key or None,
        keys=[list(u) for u in stmt.uniques],
        row_count=row_count,
    )


def load_schema(
    script: str, catalog: Optional[Catalog] = None
) -> tuple[Catalog, list[QueryBlock]]:
    """Execute a DDL script; returns the catalog and any SELECT queries.

    Statements run in order, so views may reference earlier tables and
    views. Queries (bare SELECTs) are normalized against the catalog state
    at their point in the script.
    """
    catalog = catalog if catalog is not None else Catalog()
    queries: list[QueryBlock] = []
    for stmt in parse_script(script):
        if isinstance(stmt, CreateTableStmt):
            catalog.add_table(table_from_statement(stmt))
        elif isinstance(stmt, CreateViewStmt):
            block = normalize_select(stmt.select, catalog)
            output_names = stmt.columns or block.output_names()
            catalog.add_view(ViewDef(stmt.name, block, tuple(output_names)))
        elif isinstance(stmt, SelectStmt):
            queries.append(normalize_select(stmt, catalog))
        else:  # pragma: no cover - parser produces only the above
            raise SchemaError(f"unsupported statement {stmt!r}")
    return catalog, queries

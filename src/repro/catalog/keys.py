"""Key reasoning for queries and views (paper Section 5.1).

Determines, from schema metadata (keys, functional dependencies), whether
a query's *core table* (the FROM x WHERE intermediate, Proposition 5.2)
and its *result* (Proposition 5.1) are guaranteed to be sets. The
foreign-key-join rule — the key of the leading table suffices after a
join on the other table's key — falls out of the functional-dependency
closure, as does key inference from declared FDs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..blocks.query_block import QueryBlock, Relation
from ..blocks.terms import Column, Constant, Op
from .fds import FunctionalDependency, attribute_closure, fd, minimize_key

if TYPE_CHECKING:
    from .schema import Catalog


def occurrence_key(rel: Relation, catalog: "Catalog") -> Optional[frozenset[Column]]:
    """A key of one FROM occurrence (as unique columns), or None.

    Base tables use their declared keys. A view occurrence has a key when
    the view's result is a set and its grouping columns all survive into
    the output (one row per group, keyed by the group).
    """
    if catalog.is_table(rel.name):
        schema = catalog.table(rel.name)
        if not schema.keys:
            return None
        key_names = schema.keys[0]
        return frozenset(rel.column_for(name) for name in key_names)

    view = catalog.view(rel.name)
    block = view.block
    if block.is_aggregation:
        group_positions = _group_output_positions(block)
        if group_positions is None:
            return None
        return frozenset(rel.columns[p] for p in group_positions)
    if result_is_set(block, catalog):
        return frozenset(rel.columns)
    return None


def _group_output_positions(block: QueryBlock) -> Optional[list[int]]:
    """SELECT positions holding all grouping columns, else None."""
    positions: list[int] = []
    remaining = set(block.group_by)
    for i, item in enumerate(block.select):
        if isinstance(item.expr, Column) and item.expr in remaining:
            positions.append(i)
            remaining.discard(item.expr)
    if remaining:
        return None
    return positions


def occurrence_is_set(rel: Relation, catalog: "Catalog") -> bool:
    """Is this FROM occurrence's content duplicate-free?"""
    if catalog.is_table(rel.name):
        return catalog.table(rel.name).has_key
    view = catalog.view(rel.name)
    return result_is_set(view.block, catalog)


def core_is_set(block: QueryBlock, catalog: "Catalog") -> bool:
    """Proposition 5.2: the core table is a set iff every FROM item is."""
    return all(occurrence_is_set(rel, catalog) for rel in block.from_)


def core_fds(block: QueryBlock, catalog: "Catalog") -> list[FunctionalDependency]:
    """Functional dependencies holding on the core table.

    Includes per-occurrence key and declared FDs (instantiated onto unique
    columns), FDs from view grouping structure (group key determines the
    aggregate outputs), plus equalities and constant pins from WHERE.
    """
    fds: list[FunctionalDependency] = []
    for rel in block.from_:
        if catalog.is_table(rel.name):
            schema = catalog.table(rel.name)
            rename = {
                name: rel.column_for(name) for name in schema.columns
            }
            for dep in schema.all_fds():
                fds.append(
                    fd(
                        (rename[a] for a in dep.lhs),
                        (rename[a] for a in dep.rhs),
                    )
                )
        else:
            key = occurrence_key(rel, catalog)
            if key is not None and key != frozenset(rel.columns):
                fds.append(fd(key, set(rel.columns) - key))
    for atom in block.where:
        if atom.op is not Op.EQ:
            continue
        left, right = atom.left, atom.right
        if isinstance(left, Column) and isinstance(right, Column):
            fds.append(fd({left}, {right}))
            fds.append(fd({right}, {left}))
        elif isinstance(left, Column) and isinstance(right, Constant):
            fds.append(fd((), {left}))
        elif isinstance(right, Column) and isinstance(left, Constant):
            fds.append(fd((), {right}))
    return fds


def core_key(block: QueryBlock, catalog: "Catalog") -> Optional[frozenset[Column]]:
    """A (minimized) key of the core table, or None when it may be a
    multiset. The concatenation of per-occurrence keys is a key of the
    Cartesian product; the FD closure then shrinks it (this yields the
    paper's foreign-key-join rule)."""
    if not core_is_set(block, catalog):
        return None
    combined: set[Column] = set()
    for rel in block.from_:
        key = occurrence_key(rel, catalog)
        if key is None:
            return None
        combined |= key
    all_cols = block.cols()
    fds = core_fds(block, catalog)
    return minimize_key(combined, all_cols, fds)


def result_is_set(block: QueryBlock, catalog: "Catalog") -> bool:
    """Is the query's result guaranteed duplicate-free on every database?

    SELECT DISTINCT results are sets by definition. A grouped query emits
    one row per group, so its result is a set when the retained columns
    determine the grouping columns. A conjunctive query needs a set core
    table whose key survives projection (Proposition 5.1).
    """
    if block.distinct:
        return True
    if block.is_aggregation:
        if not block.group_by:
            return True  # a single output row
        retained = set(block.col_sel())
        fds = core_fds(block, catalog)
        closure = attribute_closure(retained, fds)
        return set(block.group_by) <= closure
    key = core_key(block, catalog)
    if key is None:
        return False
    retained = {
        item.expr for item in block.select if isinstance(item.expr, Column)
    }
    if len(retained) != len(block.select):
        return False
    fds = core_fds(block, catalog)
    closure = attribute_closure(retained, fds)
    return key <= closure

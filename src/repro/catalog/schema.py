"""Database schema metadata: tables, views, keys, statistics.

The paper's core results (Sections 3 and 4) assume *no* meta-information
about the schema beyond column lists; keys and functional dependencies are
optional extras consumed only by the Section 5 machinery and by the
cost-based rewriting selection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..blocks.query_block import ViewDef
from ..errors import SchemaError
from .fds import FunctionalDependency, fd


@dataclass(frozen=True)
class TableSchema:
    """Schema of one base table.

    ``keys`` are candidate keys (sets of column names). ``fds`` are
    additional functional dependencies beyond those implied by the keys.
    ``row_count`` is an estimated cardinality used only for costing.
    """

    name: str
    columns: tuple[str, ...]
    keys: tuple[frozenset[str], ...] = ()
    fds: tuple[FunctionalDependency, ...] = ()
    row_count: int = 1000
    #: optional per-column number-of-distinct-values statistics, stored as
    #: (column, count) pairs to keep the dataclass hashable.
    distinct_counts: tuple[tuple[str, int], ...] = ()

    def __post_init__(self):
        if len(set(self.columns)) != len(self.columns):
            raise SchemaError(f"table {self.name}: duplicate column names")
        column_set = set(self.columns)
        for key in self.keys:
            if not key <= column_set:
                raise SchemaError(
                    f"table {self.name}: key {sorted(key)} mentions unknown "
                    f"columns"
                )
        for dep in self.fds:
            if not (dep.lhs | dep.rhs) <= column_set:
                raise SchemaError(
                    f"table {self.name}: FD {dep} mentions unknown columns"
                )

    @property
    def has_key(self) -> bool:
        return bool(self.keys)

    def distinct_count(self, column: str) -> int:
        """Estimated distinct values of a column.

        Key columns are unique by definition; otherwise the declared
        statistic, defaulting to a tenth of the row count.
        """
        for name, count in self.distinct_counts:
            if name == column:
                return max(1, count)
        if any(column in key and len(key) == 1 for key in self.keys):
            return max(1, self.row_count)
        return max(1, self.row_count // 10)

    def all_fds(self) -> tuple[FunctionalDependency, ...]:
        """Declared FDs plus one ``key -> all columns`` FD per key."""
        key_fds = tuple(
            fd(key, set(self.columns) - key) for key in self.keys if
            set(self.columns) - key
        )
        return self.fds + key_fds


def table(
    name: str,
    columns: Iterable[str],
    key: Optional[Iterable[str]] = None,
    keys: Iterable[Iterable[str]] = (),
    fds: Iterable[FunctionalDependency] = (),
    row_count: int = 1000,
    distinct: Optional[dict] = None,
) -> TableSchema:
    """Convenience constructor mirroring a CREATE TABLE statement.

    ``key`` declares a single primary key; ``keys`` declares several
    candidate keys; ``distinct`` maps column names to estimated
    numbers of distinct values (used by the cost model and advisor).
    """
    key_sets = [frozenset(k) for k in keys]
    if key is not None:
        key_sets.insert(0, frozenset(key))
    return TableSchema(
        name=name,
        columns=tuple(columns),
        keys=tuple(key_sets),
        fds=tuple(fds),
        row_count=row_count,
        distinct_counts=tuple((distinct or {}).items()),
    )


class Catalog:
    """Name resolution for tables and views plus their metadata.

    A catalog is the single source of truth for what names mean in FROM
    clauses: base tables, user views (rewriting candidates) and auxiliary
    views created by the rewriting algorithm itself (the ``Va`` views of
    step S4'/S5').
    """

    def __init__(self, tables: Iterable[TableSchema] = ()):
        self._tables: dict[str, TableSchema] = {}
        self._views: dict[str, ViewDef] = {}
        self._view_row_counts: dict[str, int] = {}
        for schema in tables:
            self.add_table(schema)

    # ------------------------------------------------------------------

    def add_table(self, schema: TableSchema) -> None:
        if schema.name in self._tables or schema.name in self._views:
            raise SchemaError(f"duplicate relation name {schema.name}")
        self._tables[schema.name] = schema

    def add_view(self, view: ViewDef, row_count: Optional[int] = None) -> None:
        if view.name in self._tables or view.name in self._views:
            raise SchemaError(f"duplicate relation name {view.name}")
        self._views[view.name] = view
        if row_count is not None:
            self._view_row_counts[view.name] = row_count

    def set_table_row_count(self, name: str, count: int) -> None:
        """Record an observed cardinality for a base table (for costing)."""
        from dataclasses import replace

        schema = self.table(name)
        self._tables[name] = replace(schema, row_count=count)

    def remove_view(self, name: str) -> None:
        """Drop a view (used by caches that evict materializations)."""
        if name not in self._views:
            raise SchemaError(f"unknown view {name}")
        del self._views[name]
        self._view_row_counts.pop(name, None)

    # ------------------------------------------------------------------

    @property
    def tables(self) -> dict[str, TableSchema]:
        return dict(self._tables)

    @property
    def views(self) -> dict[str, ViewDef]:
        return dict(self._views)

    def is_table(self, name: str) -> bool:
        return name in self._tables

    def is_view(self, name: str) -> bool:
        return name in self._views

    def table(self, name: str) -> TableSchema:
        try:
            return self._tables[name]
        except KeyError:
            raise SchemaError(f"unknown table {name}") from None

    def view(self, name: str) -> ViewDef:
        try:
            return self._views[name]
        except KeyError:
            raise SchemaError(f"unknown view {name}") from None

    def columns_of(self, name: str) -> tuple[str, ...]:
        """Output column names of a table or view."""
        if name in self._tables:
            return self._tables[name].columns
        if name in self._views:
            return self._views[name].output_names
        raise SchemaError(f"unknown relation {name}")

    def row_count(self, name: str) -> int:
        """Estimated cardinality of a relation, for costing.

        For a view without an explicit estimate, a crude default assumes the
        view condenses its sources (grouping) or preserves the dominant
        source size divided by the number of predicates.
        """
        if name in self._tables:
            return self._tables[name].row_count
        if name in self._view_row_counts:
            return self._view_row_counts[name]
        if name in self._views:
            return self._estimate_view(self._views[name])
        raise SchemaError(f"unknown relation {name}")

    def set_row_count(self, name: str, count: int) -> None:
        """Record an observed/estimated cardinality for a view."""
        if name not in self._views:
            raise SchemaError(f"unknown view {name}")
        self._view_row_counts[name] = count

    def _estimate_view(self, view: ViewDef) -> int:
        size = 1
        for rel in view.block.from_:
            if rel.name in self._tables:
                size *= max(1, self._tables[rel.name].row_count)
            else:
                size *= 100
        # Each equality predicate roughly divides the cross product by 10;
        # grouping condenses further.
        for _ in view.block.where:
            size = max(1, size // 10)
        if view.block.group_by or view.block.is_aggregation:
            size = max(1, size // 10)
        return size

    def copy(self) -> "Catalog":
        clone = Catalog()
        clone._tables = dict(self._tables)
        clone._views = dict(self._views)
        clone._view_row_counts = dict(self._view_row_counts)
        return clone

"""Functional dependencies and attribute-set closure.

Used by Section 5 of the paper: keys (and FDs, which can be used to infer
keys) let us determine that query results are *sets*, enabling the relaxed
many-to-1 usability conditions of Section 5.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, Hashable, Iterable, Sequence


@dataclass(frozen=True)
class FunctionalDependency:
    """``lhs -> rhs`` over attribute names (or any hashable attributes)."""

    lhs: frozenset
    rhs: frozenset

    def __str__(self) -> str:
        left = ", ".join(sorted(map(str, self.lhs)))
        right = ", ".join(sorted(map(str, self.rhs)))
        return f"{{{left}}} -> {{{right}}}"


def fd(lhs: Iterable[Hashable], rhs: Iterable[Hashable]) -> FunctionalDependency:
    """Convenience constructor for a functional dependency."""
    return FunctionalDependency(frozenset(lhs), frozenset(rhs))


def attribute_closure(
    attrs: AbstractSet, fds: Sequence[FunctionalDependency]
) -> frozenset:
    """The closure of ``attrs`` under ``fds`` (textbook fixpoint algorithm).

    Runs in O(|fds| * total attribute count) per pass; passes are bounded by
    the number of FDs, which is fine at the scale of a query block.
    """
    closure = set(attrs)
    changed = True
    while changed:
        changed = False
        for dep in fds:
            if dep.lhs <= closure and not dep.rhs <= closure:
                closure.update(dep.rhs)
                changed = True
    return frozenset(closure)


def implies_fd(
    fds: Sequence[FunctionalDependency], candidate: FunctionalDependency
) -> bool:
    """True when ``candidate`` is entailed by ``fds`` (Armstrong axioms)."""
    return candidate.rhs <= attribute_closure(candidate.lhs, fds)


def is_superkey(
    attrs: AbstractSet,
    all_attrs: AbstractSet,
    fds: Sequence[FunctionalDependency],
) -> bool:
    """True when ``attrs`` functionally determines ``all_attrs``."""
    return frozenset(all_attrs) <= attribute_closure(attrs, fds)


def minimize_key(
    attrs: AbstractSet,
    all_attrs: AbstractSet,
    fds: Sequence[FunctionalDependency],
) -> frozenset:
    """Shrink a superkey to a minimal key by dropping redundant attributes."""
    key = set(attrs)
    for attr in sorted(attrs, key=str):
        trial = key - {attr}
        if trial and is_superkey(trial, all_attrs, fds):
            key = trial
    return frozenset(key)

"""Intentional evaluator bugs for mutation-testing the oracle.

The CI fuzz job injects one of these and *requires* the fuzzer to catch
and shrink it — proving the oracle actually detects evaluator/rewriter
drift rather than vacuously passing. Each injection patches the
evaluator's aggregate dispatch (or comparison) in place and restores it
on exit.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from ..blocks.exprs import AggFunc
from ..engine import aggregates as _aggregates


def _sum_empty_zero(values):
    # BUG: SUM over an empty group returns 0 instead of SQL's NULL.
    result = _ORIGINALS[AggFunc.SUM](values)
    return 0 if result is None else result


def _avg_int_div(values):
    # BUG: AVG over integers floor-divides instead of dividing exactly.
    values = [v for v in values if v is not None]
    if not values:
        return None
    total = _ORIGINALS[AggFunc.SUM](values)
    if isinstance(total, int):
        return total // len(values)
    return total / len(values)


def _count_rows(values):
    # BUG: COUNT(c) counts rows (NULLs included), i.e. behaves as COUNT(*).
    return len(list(values))


def _min_as_max(values):
    # BUG: MIN evaluates MAX — a crude but unambiguous rewiring.
    return _ORIGINALS[AggFunc.MAX](values)


_ORIGINALS = dict(_aggregates._DISPATCH)

_BUGS = {
    "sum-empty-zero": {AggFunc.SUM: _sum_empty_zero},
    "avg-int-div": {AggFunc.AVG: _avg_int_div},
    "count-rows": {AggFunc.COUNT: _count_rows},
    "min-as-max": {AggFunc.MIN: _min_as_max},
}

BUG_NAMES = tuple(sorted(_BUGS))


@contextmanager
def inject_bug(name: str) -> Iterator[None]:
    """Patch the named evaluator bug in for the duration of the block."""
    try:
        patch = _BUGS[name]
    except KeyError:
        raise ValueError(
            f"unknown bug {name!r}; known: {', '.join(BUG_NAMES)}"
        ) from None
    saved = {func: _aggregates._DISPATCH[func] for func in patch}
    _aggregates._DISPATCH.update(patch)
    try:
        yield
    finally:
        _aggregates._DISPATCH.update(saved)

"""Adversarial scenario generation for the fuzzing loop.

``workloads.random_queries.random_scenario`` optimizes for *plausible*
(query, view) pairs; this module perturbs those scenarios toward the
regions where evaluator and rewriter bugs hide:

* ``empty_db`` / ``empty_table`` — empty relations (scalar aggregates
  over nothing, NULL-valued view rows feeding outer aggregates);
* ``single_row`` — minimal non-empty instances;
* ``all_dups`` — one distinct row duplicated many times (multiset
  semantics, COUNT/SUM multiplicity bugs);
* ``boundary`` — instance values drawn from the constants appearing in
  the scenario's WHERE/HAVING predicates, ±1 (predicates that straddle);
* ``empty_groups`` — an extra selective predicate so the core table (and
  hence every group) is empty or nearly so;
* ``distinct`` — DISTINCT projection queries (set-semantics path);
* ``scalar_agg`` — aggregation without GROUP BY (the
  one-row-even-when-empty rule);
* ``nulls`` — SQL NULLs sprinkled through the base data (aggregates must
  skip them, comparisons must be not-true, ``COUNT(c) != COUNT(*)``);
* ``completeness`` — Cohen–Nutt-shaped (query, view) pairs: exact-match
  aggregation views with vacuous HAVING, AVG-only views and self-join
  conjunctive views answering MIN/MAX queries — the regions where the
  C1–C4 conditions find nothing but the complete strategy succeeds
  (see ``docs/strategies.md``).

Every profile is deterministic in the seed, and all of them reuse the
``Scenario`` container so the oracle, shrinker and serializer need no
special cases.
"""

from __future__ import annotations

import random
from typing import Iterator

from ..blocks.exprs import AggFunc, Aggregate, aggregates_in
from ..blocks.naming import FreshNames
from ..blocks.query_block import QueryBlock, Relation, SelectItem, ViewDef
from ..blocks.terms import Comparison, Constant, Op
from ..errors import NormalizationError
from ..workloads.random_queries import (
    Scenario,
    _random_atoms,
    random_scenario,
)

PROFILES = (
    "baseline",
    "empty_db",
    "empty_table",
    "single_row",
    "all_dups",
    "boundary",
    "empty_groups",
    "distinct",
    "scalar_agg",
    "nulls",
    "completeness",
)


def fuzz_scenario(seed: int) -> Scenario:
    """A deterministic adversarial scenario; the profile rotates by seed."""
    profile = PROFILES[seed % len(PROFILES)]
    return _build(profile, seed)


def _build(profile: str, seed: int) -> Scenario:
    # A str seed hashes deterministically (unaffected by PYTHONHASHSEED),
    # so repros replay bit-identically in any process.
    rng = random.Random(f"fuzz:{profile}:{seed}")
    base = random_scenario(seed)
    mutate = _MUTATORS[profile]
    return mutate(base, rng)


# ----------------------------------------------------------------------
# Instance mutators
# ----------------------------------------------------------------------


def _baseline(scenario: Scenario, rng: random.Random) -> Scenario:
    return scenario


def _empty_db(scenario: Scenario, rng: random.Random) -> Scenario:
    scenario.instance = {name: [] for name in scenario.instance}
    return scenario


def _empty_table(scenario: Scenario, rng: random.Random) -> Scenario:
    names = sorted(scenario.instance)
    victim = rng.choice(names)
    scenario.instance[victim] = []
    return scenario


def _single_row(scenario: Scenario, rng: random.Random) -> Scenario:
    for name, schema in scenario.catalog.tables.items():
        scenario.instance[name] = [
            tuple(rng.randrange(3) for _ in schema.columns)
        ]
    return scenario


def _all_dups(scenario: Scenario, rng: random.Random) -> Scenario:
    for name, schema in scenario.catalog.tables.items():
        row = tuple(rng.randrange(2) for _ in schema.columns)
        scenario.instance[name] = [row] * rng.randint(2, 6)
    return scenario


def _predicate_constants(scenario: Scenario) -> list[int]:
    """Every integer constant appearing in any WHERE/HAVING of the scenario."""
    out: list[int] = []
    blocks = [scenario.query] + [v.block for v in scenario.views]
    for block in blocks:
        for atom in tuple(block.where) + tuple(block.having):
            for side in (atom.left, atom.right):
                if isinstance(side, Constant) and isinstance(side.value, int):
                    out.append(side.value)
    return out


def _boundary(scenario: Scenario, rng: random.Random) -> Scenario:
    constants = _predicate_constants(scenario) or [0, 1]
    pool = sorted(
        {c + delta for c in constants for delta in (-1, 0, 1)} | {0, 1}
    )
    for name, schema in scenario.catalog.tables.items():
        scenario.instance[name] = [
            tuple(rng.choice(pool) for _ in schema.columns)
            for _ in range(rng.randrange(7))
        ]
    return scenario


# ----------------------------------------------------------------------
# Query mutators
# ----------------------------------------------------------------------


def _empty_groups(scenario: Scenario, rng: random.Random) -> Scenario:
    """Append a selective predicate so most (often all) rows are filtered."""
    query = scenario.query
    columns = [c for rel in query.from_ for c in rel.columns]
    if not columns:
        return scenario
    atom = Comparison(
        rng.choice(columns),
        rng.choice([Op.GT, Op.EQ]),
        Constant(rng.choice([7, 9, 50])),
    )
    try:
        scenario.query = query.with_(where=query.where + (atom,)).validate()
    except NormalizationError:
        pass
    return scenario


def _distinct(scenario: Scenario, rng: random.Random) -> Scenario:
    """Force a DISTINCT projection query (the set-semantics path)."""
    query = scenario.query
    columns = [c for rel in query.from_ for c in rel.columns]
    n_sel = rng.randint(1, min(3, len(columns)))
    try:
        scenario.query = QueryBlock(
            select=tuple(
                SelectItem(c) for c in rng.sample(columns, n_sel)
            ),
            from_=query.from_,
            where=query.where,
            distinct=True,
        ).validate()
    except NormalizationError:
        pass
    return scenario


def _scalar_agg(scenario: Scenario, rng: random.Random) -> Scenario:
    """No GROUP BY: one output row even over an empty core table."""
    query = scenario.query
    aggs = [
        agg
        for item in query.select
        for agg in aggregates_in(item.expr)
    ]
    if not aggs:
        columns = [c for rel in query.from_ for c in rel.columns]
        aggs = [
            Aggregate(rng.choice(list(_AGG_POOL)), rng.choice(columns))
        ]
    select = tuple(
        SelectItem(agg, alias=f"agg{i}") for i, agg in enumerate(aggs)
    )
    try:
        scenario.query = QueryBlock(
            select=select,
            from_=query.from_,
            where=query.where,
        ).validate()
    except NormalizationError:
        pass
    if rng.random() < 0.5:
        # Half the time over a (near-)empty core: the empty-group rule.
        scenario = _empty_groups(scenario, rng)
    return scenario


def _nulls(scenario: Scenario, rng: random.Random) -> Scenario:
    """Sprinkle SQL NULLs through the base data (roughly one cell in
    three), guaranteeing at least one NULL somewhere when any rows exist."""
    hit = False
    for name in sorted(scenario.instance):
        rows = []
        for row in scenario.instance[name]:
            row = tuple(
                None if rng.random() < 0.3 else value for value in row
            )
            hit = hit or None in row
            rows.append(row)
        scenario.instance[name] = rows
    if not hit:
        for name in sorted(scenario.instance):
            if scenario.instance[name]:
                first = scenario.instance[name][0]
                scenario.instance[name][0] = (None,) + tuple(first[1:])
                break
    return scenario


def _completeness(scenario: Scenario, rng: random.Random) -> Scenario:
    """Replace (query, views) with a Cohen–Nutt-shaped pair.

    The shapes target exactly the gap between the C1–C4 usability
    conditions and the complete rewriting strategy: aggregation views
    with a vacuous HAVING, AVG views without a COUNT output, and
    self-join conjunctive views answering duplicate-insensitive MIN/MAX
    queries. The base catalog and instance are kept, so the oracle and
    serializer need no special cases.
    """
    shape = rng.choice(
        ("having", "having", "avg", "avg", "maxmin", "maxmin", "direct")
    )
    try:
        query, view = _completeness_pair(scenario.catalog, rng, shape)
    except (NormalizationError, ValueError, IndexError):
        return scenario
    scenario.query = query
    scenario.views = [view]
    scenario.catalog.add_view(view)
    return scenario


def _completeness_pair(catalog, rng: random.Random, shape: str):
    namer = FreshNames()
    names = list(catalog.tables)
    if shape == "maxmin":
        name = rng.choice(names)
        base = catalog.columns_of(name)
        rel = Relation(name, namer.columns(base), tuple(base))
        columns = list(rel.columns)
        where = _random_atoms(columns, rng, 1)
        target = rng.choice(columns)
        func = rng.choice([AggFunc.MIN, AggFunc.MAX])
        group: tuple = ()
        others = [c for c in columns if c != target]
        if others and rng.random() < 0.4:
            group = (rng.choice(others),)
        query = QueryBlock(
            select=tuple(SelectItem(c) for c in group)
            + (SelectItem(Aggregate(func, target), alias="m"),),
            from_=(rel,),
            where=where,
            group_by=group,
        ).validate()
        # The view joins the table against itself and exports every
        # column of its first occurrence, so the query's single
        # occurrence maps onto it many-to-one — set-equivalent only
        # because MIN/MAX ignore the duplication.
        vr1 = Relation(name, namer.columns(base), tuple(base))
        vr2 = Relation(name, namer.columns(base), tuple(base))
        sub = dict(zip(rel.columns, vr1.columns))
        join = rng.randrange(len(base))
        view_block = QueryBlock(
            select=tuple(SelectItem(c) for c in vr1.columns),
            from_=(vr1, vr2),
            where=tuple(a.substitute(sub) for a in where)
            + (Comparison(vr1.columns[join], Op.EQ, vr2.columns[join]),),
        ).validate()
    else:
        chosen = [rng.choice(names) for _ in range(rng.randint(1, 2))]
        rels = tuple(
            Relation(
                n,
                namer.columns(catalog.columns_of(n)),
                tuple(catalog.columns_of(n)),
            )
            for n in chosen
        )
        columns = [c for rel in rels for c in rel.columns]
        where = _random_atoms(columns, rng, 2)
        low = 1 if shape == "having" else 0
        group = tuple(
            rng.sample(columns, rng.randint(low, min(2, len(columns))))
        )
        if shape == "avg":
            aggs = [Aggregate(AggFunc.AVG, rng.choice(columns))]
        else:
            aggs = [
                Aggregate(rng.choice(list(_AGG_POOL)), rng.choice(columns))
                for _ in range(rng.randint(1, 2))
            ]
        query = QueryBlock(
            select=tuple(SelectItem(c) for c in group)
            + tuple(
                SelectItem(a, alias=f"agg{i}") for i, a in enumerate(aggs)
            ),
            from_=rels,
            where=where,
            group_by=group,
        ).validate()
        # The view is the query verbatim over renamed occurrences,
        # optionally with a HAVING that is vacuous on every group
        # (a group's COUNT is at least 1) — C1–C4 reject any view
        # carrying a HAVING; the complete strategy proves it away.
        sub = {c: namer.column(c.name) for c in columns}
        view_block = query.substitute(sub)
        if shape == "having":
            op, bound = rng.choice([(Op.GE, 1), (Op.GT, 0), (Op.GE, 0)])
            view_block = view_block.with_(
                having=(
                    Comparison(
                        Aggregate(AggFunc.COUNT, sub[rng.choice(columns)]),
                        op,
                        Constant(bound),
                    ),
                )
            )
        view_block = view_block.validate()
    out_names = tuple(f"o{i}" for i in range(len(view_block.select)))
    return query, ViewDef("CN", view_block, out_names)


_AGG_POOL = (AggFunc.SUM, AggFunc.COUNT, AggFunc.MIN, AggFunc.MAX, AggFunc.AVG)

_MUTATORS = {
    "baseline": _baseline,
    "empty_db": _empty_db,
    "empty_table": _empty_table,
    "single_row": _single_row,
    "all_dups": _all_dups,
    "boundary": _boundary,
    "empty_groups": _empty_groups,
    "distinct": _distinct,
    "scalar_agg": _scalar_agg,
    "nulls": _nulls,
    "completeness": _completeness,
}


def iter_scenarios(base_seed: int) -> Iterator[Scenario]:
    """Endless deterministic scenario stream starting at ``base_seed``."""
    seed = base_seed
    while True:
        yield fuzz_scenario(seed)
        seed += 1

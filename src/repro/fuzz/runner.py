"""The fuzzing loop: generate → cross-check → shrink → persist.

Driven by ``repro fuzz`` (see :mod:`repro.cli`). Every scenario goes
through the SQLite cross-checker; every Nth scenario additionally runs
the rewrite search under a tight :class:`SearchBudget` (partial result
sets must still be sound). A mismatch is shrunk by delta debugging and
written to ``fuzz-failures/`` as a replayable ``repro-fuzz/1`` JSON
document.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from ..errors import OracleUnsupported
from ..obs.budget import SearchBudget
from ..obs.metrics import current_metrics
from ..oracle import CrossChecker
from ..oracle.backends import available_backends
from ..workloads.random_queries import Scenario
from .generate import PROFILES, fuzz_scenario
from .serialize import scenario_to_json
from .shrink import shrink_scenario

#: Every Nth scenario re-runs the search under each tight budget.
BUDGET_EVERY = 5

TIGHT_BUDGETS = (
    SearchBudget(max_mappings=2),
    SearchBudget(max_candidates=1),
)


@dataclass
class FuzzStats:
    scenarios: int = 0
    checks: int = 0
    rewritings: int = 0
    failures: int = 0
    skipped: int = 0
    shrink_iterations: int = 0
    elapsed: float = 0.0
    engine: str = "auto"
    backends: tuple = ("sqlite",)
    by_profile: dict = field(default_factory=dict)
    #: Structured per-profile breakdown:
    #: ``{profile: {"scenarios", "checks", "mismatches", "skipped"}}``.
    profiles: dict = field(default_factory=dict)
    failure_files: list = field(default_factory=list)

    @property
    def scenarios_per_sec(self) -> float:
        return self.scenarios / self.elapsed if self.elapsed > 0 else 0.0

    def profile_bucket(self, profile: str) -> dict:
        """The mutable per-profile counter record, created on first use."""
        return self.profiles.setdefault(
            profile,
            {"scenarios": 0, "checks": 0, "mismatches": 0, "skipped": 0},
        )

    def as_dict(self) -> dict:
        return {
            "scenarios": self.scenarios,
            "checks": self.checks,
            "rewritings": self.rewritings,
            "failures": self.failures,
            "skipped": self.skipped,
            "shrink_iterations": self.shrink_iterations,
            "elapsed_seconds": round(self.elapsed, 3),
            "scenarios_per_sec": round(self.scenarios_per_sec, 2),
            "engine": self.engine,
            "backends": list(self.backends),
            "by_profile": dict(self.by_profile),
            "profiles": {
                name: dict(bucket)
                for name, bucket in sorted(self.profiles.items())
            },
            "failure_files": [str(p) for p in self.failure_files],
        }


class FuzzRunner:
    """Run the fuzz loop for a time budget or scenario count."""

    def __init__(
        self,
        out_dir: Path = Path("fuzz-failures"),
        base_seed: int = 0,
        max_rewritings_per_scenario: int = 8,
        shrink_checks: int = 300,
        engine: str = "auto",
        backends: tuple = ("sqlite",),
        strategy: str = "c1c4",
    ):
        self.out_dir = Path(out_dir)
        self.base_seed = base_seed
        #: Execution-engine mode for every scenario evaluation:
        #: ``row``/``columnar``/``auto`` run that engine against the live
        #: backends; ``both`` additionally cross-checks row vs columnar
        #: per evaluation (N-way agreement).
        self.engine = engine
        #: Live backend names every scenario executes on (the N-way
        #: oracle: row = columnar = SQLite = DuckDB = ...).
        self.backends = tuple(backends)
        #: Planner strategy the oracle searches with; ``"both"`` runs the
        #: cross-planner differential mode (oracle soundness of the
        #: union plus C1–C4 ⊆ Cohen–Nutt dominance per scenario) and
        #: records per-strategy found/missed tallies per profile.
        self.strategy = strategy
        self.checker = CrossChecker(
            max_rewritings=max_rewritings_per_scenario,
            engine=engine,
            backends=self.backends,
            strategy=strategy,
        )
        self.shrink_checks = shrink_checks

    # ------------------------------------------------------------------

    def run(
        self,
        budget_seconds: Optional[float] = 60.0,
        max_scenarios: Optional[int] = None,
        max_failures: int = 5,
        progress=None,
    ) -> FuzzStats:
        """Fuzz until the time budget, scenario count or failure cap."""
        stats = FuzzStats(engine=self.engine, backends=self.backends)
        start = time.perf_counter()
        index = 0
        while True:
            elapsed = time.perf_counter() - start
            if budget_seconds is not None and elapsed >= budget_seconds:
                break
            if max_scenarios is not None and index >= max_scenarios:
                break
            if stats.failures >= max_failures:
                break
            seed = self.base_seed + index
            index += 1
            self._run_one(seed, stats)
            if progress is not None and index % 50 == 0:
                progress(stats, time.perf_counter() - start)
        stats.elapsed = time.perf_counter() - start
        return stats

    # ------------------------------------------------------------------

    def _run_one(self, seed: int, stats: FuzzStats) -> None:
        profile = PROFILES[seed % len(PROFILES)]
        stats.by_profile[profile] = stats.by_profile.get(profile, 0) + 1
        bucket = stats.profile_bucket(profile)
        scenario = fuzz_scenario(seed)
        budget = None
        if seed % BUDGET_EVERY == 0:
            budget = TIGHT_BUDGETS[
                (seed // BUDGET_EVERY) % len(TIGHT_BUDGETS)
            ]
        try:
            report = self.checker.check(scenario, budget=budget)
        except OracleUnsupported as reason:
            stats.skipped += 1
            stats.by_profile[f"{profile}:skipped"] = (
                stats.by_profile.get(f"{profile}:skipped", 0) + 1
            )
            bucket["skipped"] += 1
            _record_outcome(profile, skipped=True)
            del reason
            return
        stats.scenarios += 1
        stats.checks += report.checks
        stats.rewritings += report.rewritings
        bucket["scenarios"] += 1
        bucket["checks"] += report.checks
        bucket["mismatches"] += len(report.mismatches)
        if self.strategy != "c1c4":
            # Per-strategy uplift tallies: did each planner strategy
            # find at least one rewriting for this scenario?
            for name, count in report.strategy_counts.items():
                outcome = "found" if count else "missed"
                key = f"{name}_{outcome}"
                bucket[key] = bucket.get(key, 0) + 1
        _record_outcome(
            profile, checks=report.checks, mismatches=len(report.mismatches)
        )
        if report.ok:
            return
        stats.failures += 1
        self._handle_failure(seed, profile, scenario, report, budget, stats)

    def _handle_failure(
        self, seed, profile, scenario, report, budget, stats
    ) -> None:
        def still_fails(candidate: Scenario) -> bool:
            try:
                return not self.checker.check(candidate, budget=budget).ok
            except OracleUnsupported:
                return False

        result = shrink_scenario(
            scenario, still_fails, max_checks=self.shrink_checks
        )
        stats.shrink_iterations += result.iterations
        final_report = self.checker.check(result.scenario, budget=budget)
        path = self._write_repro(
            seed, profile, result, final_report, budget, stats
        )
        stats.failure_files.append(path)

    def _write_repro(
        self, seed, profile, result, report, budget, stats
    ) -> Path:
        self.out_dir.mkdir(parents=True, exist_ok=True)
        doc = scenario_to_json(
            result.scenario,
            profile=profile,
            engine=self.engine,
            strategy=self.strategy,
            backends=list(self.backends),
            budget=budget.as_dict() if budget is not None else None,
            mismatches=[m.describe() for m in report.mismatches],
            shrink={
                "iterations": result.iterations,
                "rows": [result.rows_before, result.rows_after],
                "views": [result.views_before, result.views_after],
            },
            # The run's per-profile tallies at failure time, so a repro
            # records how hard its profile had been exercised.
            profile_stats=dict(stats.profile_bucket(profile)),
        )
        path = self.out_dir / f"seed-{seed}-{profile}.json"
        path.write_text(json.dumps(doc, indent=2) + "\n")
        return path


def _record_outcome(
    profile: str,
    checks: int = 0,
    mismatches: int = 0,
    skipped: bool = False,
) -> None:
    """Fold one fuzz scenario's outcome into the active registry."""
    metrics = current_metrics()
    if metrics is None:
        return
    metrics.counter(
        "repro_fuzz_scenarios_total",
        "Fuzz scenarios generated, by profile and outcome.",
        ("profile", "outcome"),
    ).labels(profile, "skipped" if skipped else "checked").inc()
    if checks:
        metrics.counter(
            "repro_fuzz_checks_total",
            "Oracle comparisons performed by the fuzz loop, by profile.",
            ("profile",),
        ).labels(profile).inc(checks)
    if mismatches:
        metrics.counter(
            "repro_fuzz_mismatches_total",
            "Oracle disagreements found by the fuzz loop, by profile.",
            ("profile",),
        ).labels(profile).inc(mismatches)


def replay(
    path: Path,
    budget: Optional[SearchBudget] = None,
    engine: Optional[str] = None,
    backends: Optional[tuple] = None,
    strategy: Optional[str] = None,
):
    """Re-run a persisted repro; returns the fresh :class:`CheckReport`.

    ``engine``, ``backends`` and ``strategy`` default to the modes
    recorded in the repro document, so a failure found by an N-way sweep
    replays under the same cross-checks (pre-strategy repro files
    default to ``c1c4``, the search that produced them). Recorded
    backends whose driver is absent on this machine are dropped (with
    SQLite always retained), so a repro from the CI DuckDB job still
    replays locally.
    """
    from .serialize import scenario_from_json

    doc = json.loads(Path(path).read_text())
    scenario = scenario_from_json(doc)
    saved = doc.get("budget")
    if budget is None and saved:
        budget = SearchBudget(
            deadline=saved.get("deadline"),
            max_mappings=saved.get("max_mappings"),
            max_candidates=saved.get("max_candidates"),
        )
    if engine is None:
        engine = doc.get("engine", "auto")
    if backends is None:
        backends = tuple(doc.get("backends", ("sqlite",)))
    if strategy is None:
        strategy = doc.get("strategy", "c1c4")
    installed = set(available_backends())
    backends = tuple(b for b in backends if b in installed) or ("sqlite",)
    return CrossChecker(
        engine=engine, backends=backends, strategy=strategy
    ).check(scenario, budget=budget)

"""Property-based fuzzing of rewrite soundness against the SQLite oracle.

``repro fuzz`` drives :func:`repro.fuzz.generate.fuzz_scenario` —
adversarial (query, views, database) triples beyond what
``workloads.random_queries`` produces — through the cross-backend oracle
(:mod:`repro.oracle`). Any mismatch is delta-debugged down to a minimal
replayable JSON repro (``repro fuzz --replay <file>``); see
``docs/oracle.md``.
"""

from .generate import PROFILES, fuzz_scenario
from .mutations import BUG_NAMES, inject_bug
from .runner import FuzzRunner, FuzzStats, replay
from .serialize import scenario_from_json, scenario_to_json
from .shrink import ShrinkResult, shrink_scenario

__all__ = [
    "BUG_NAMES",
    "FuzzRunner",
    "FuzzStats",
    "PROFILES",
    "fuzz_scenario",
    "inject_bug",
    "replay",
    "scenario_from_json",
    "scenario_to_json",
    "ShrinkResult",
    "shrink_scenario",
]

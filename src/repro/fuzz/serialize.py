"""Replayable JSON repros for fuzz failures.

A repro stores the catalog's base tables, the views and query as SQL
text, and the concrete database instance. Deserialization re-parses the
SQL through the repo's own parser — legitimate because
``parse(print(q))`` round-trips structurally (property-pinned in
``tests/sqlparser/test_roundtrip_fuzz.py``), so the replayed scenario is
the shrunk scenario.
"""

from __future__ import annotations

import json
from typing import Union

from ..blocks.normalize import parse_query, parse_view
from ..blocks.to_sql import block_to_sql, view_to_sql
from ..catalog.schema import Catalog, table
from ..workloads.random_queries import Scenario

#: Versioned schema tag, mirroring the repro-api/1 convention.
FUZZ_SCHEMA = "repro-fuzz/1"


def scenario_to_json(scenario: Scenario, **extra) -> dict:
    """A JSON-able dict fully describing a scenario (plus ``extra`` keys)."""
    doc = {
        "schema": FUZZ_SCHEMA,
        "seed": scenario.seed,
        "tables": [
            {
                "name": schema.name,
                "columns": list(schema.columns),
                "keys": [sorted(key) for key in schema.keys],
                "row_count": schema.row_count,
            }
            for schema in scenario.catalog.tables.values()
        ],
        "views": [view_to_sql(view) for view in scenario.views],
        "query": block_to_sql(scenario.query),
        "instance": {
            name: [list(row) for row in rows]
            for name, rows in scenario.instance.items()
        },
    }
    doc.update(extra)
    return doc


def scenario_from_json(doc: Union[dict, str]) -> Scenario:
    """Rebuild a scenario from :func:`scenario_to_json` output."""
    if isinstance(doc, str):
        doc = json.loads(doc)
    if doc.get("schema") != FUZZ_SCHEMA:
        raise ValueError(
            f"not a {FUZZ_SCHEMA} document (schema={doc.get('schema')!r})"
        )
    catalog = Catalog(
        [
            table(
                spec["name"],
                spec["columns"],
                keys=[tuple(k) for k in spec.get("keys", [])],
                row_count=spec.get("row_count", 1000),
            )
            for spec in doc["tables"]
        ]
    )
    views = []
    for sql in doc["views"]:
        view = parse_view(sql, catalog)
        catalog.add_view(view)
        views.append(view)
    query = parse_query(doc["query"], catalog)
    instance = {
        name: [tuple(row) for row in rows]
        for name, rows in doc["instance"].items()
    }
    return Scenario(
        seed=doc.get("seed", 0),
        catalog=catalog,
        query=query,
        views=views,
        instance=instance,
    )

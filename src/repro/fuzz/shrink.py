"""Delta-debugging shrinker for failing fuzz scenarios.

Greedy fixpoint minimization: drop views, then ddmin the instance rows
per table, then drop WHERE/HAVING atoms from the query and the views —
keeping every candidate only if the failure predicate still holds. The
predicate re-runs the full cross-check (including re-searching for
rewritings on the shrunk scenario), so a kept candidate is a genuine
smaller repro, not a stale one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..blocks.query_block import QueryBlock, ViewDef
from ..catalog.schema import Catalog
from ..errors import NormalizationError
from ..workloads.random_queries import Scenario

FailurePredicate = Callable[[Scenario], bool]


@dataclass
class ShrinkResult:
    scenario: Scenario
    iterations: int
    rows_before: int
    rows_after: int
    views_before: int
    views_after: int


def _total_rows(scenario: Scenario) -> int:
    return sum(len(rows) for rows in scenario.instance.values())


def _rebuild(
    base: Scenario,
    views: Sequence[ViewDef],
    query: QueryBlock,
    instance: dict,
) -> Scenario:
    """A fresh scenario (own catalog) with the given parts swapped in."""
    catalog = Catalog(list(base.catalog.tables.values()))
    for view in views:
        catalog.add_view(view)
    return Scenario(
        seed=base.seed,
        catalog=catalog,
        query=query,
        views=list(views),
        instance={name: list(rows) for name, rows in instance.items()},
    )


class _Shrinker:
    def __init__(self, still_fails: FailurePredicate, max_checks: int):
        self.still_fails = still_fails
        self.max_checks = max_checks
        self.checks = 0

    def fails(self, candidate: Scenario) -> bool:
        if self.checks >= self.max_checks:
            return False
        self.checks += 1
        try:
            return self.still_fails(candidate)
        except Exception:
            # A candidate that crashes the checker is not a usable repro.
            return False

    # ------------------------------------------------------------------

    def drop_views(self, current: Scenario) -> Scenario:
        changed = True
        while changed:
            changed = False
            for i in range(len(current.views) - 1, -1, -1):
                views = current.views[:i] + current.views[i + 1:]
                candidate = _rebuild(
                    current, views, current.query, current.instance
                )
                if self.fails(candidate):
                    current = candidate
                    changed = True
        return current

    def ddmin_rows(self, current: Scenario) -> Scenario:
        for name in sorted(current.instance):
            rows = list(current.instance[name])
            # Try empty first — the cheapest big win.
            for subset in ([],):
                candidate = self._with_rows(current, name, subset)
                if self.fails(candidate):
                    current = candidate
                    rows = subset
                    break
            chunk = max(1, len(rows) // 2)
            while chunk >= 1 and rows:
                reduced = False
                start = 0
                while start < len(rows):
                    subset = rows[:start] + rows[start + chunk:]
                    candidate = self._with_rows(current, name, subset)
                    if self.fails(candidate):
                        current = candidate
                        rows = subset
                        reduced = True
                    else:
                        start += chunk
                if chunk == 1 and not reduced:
                    break
                chunk = chunk // 2 if chunk > 1 else (1 if reduced else 0)
        return current

    @staticmethod
    def _with_rows(current: Scenario, name: str, rows: list) -> Scenario:
        instance = {n: list(r) for n, r in current.instance.items()}
        instance[name] = list(rows)
        return _rebuild(current, current.views, current.query, instance)

    def drop_atoms(self, current: Scenario) -> Scenario:
        current = self._drop_query_atoms(current, "having")
        current = self._drop_query_atoms(current, "where")
        for i in range(len(current.views)):
            current = self._drop_view_atoms(current, i)
        return current

    def _drop_query_atoms(self, current: Scenario, clause: str) -> Scenario:
        atoms = list(getattr(current.query, clause))
        for i in range(len(atoms) - 1, -1, -1):
            reduced = tuple(atoms[:i] + atoms[i + 1:])
            try:
                query = current.query.with_(**{clause: reduced}).validate()
            except NormalizationError:
                continue
            candidate = _rebuild(
                current, current.views, query, current.instance
            )
            if self.fails(candidate):
                current = candidate
                atoms = list(reduced)
        return current

    def _drop_view_atoms(self, current: Scenario, index: int) -> Scenario:
        view = current.views[index]
        atoms = list(view.block.where)
        for i in range(len(atoms) - 1, -1, -1):
            reduced = tuple(atoms[:i] + atoms[i + 1:])
            try:
                block = view.block.with_(where=reduced).validate()
            except NormalizationError:
                continue
            new_view = ViewDef(view.name, block, view.output_names)
            views = (
                list(current.views[:index])
                + [new_view]
                + list(current.views[index + 1:])
            )
            candidate = _rebuild(
                current, views, current.query, current.instance
            )
            if self.fails(candidate):
                current = candidate
                atoms = list(reduced)
        return current


def shrink_scenario(
    scenario: Scenario,
    still_fails: FailurePredicate,
    max_checks: int = 400,
    rounds: int = 3,
) -> ShrinkResult:
    """Minimize ``scenario`` while ``still_fails`` holds.

    ``max_checks`` caps the number of predicate evaluations (each one is
    a full cross-check); ``rounds`` repeats the strategy pipeline until a
    fixpoint or the round limit.
    """
    shrinker = _Shrinker(still_fails, max_checks)
    rows_before = _total_rows(scenario)
    views_before = len(scenario.views)
    current = _rebuild(
        scenario, scenario.views, scenario.query, scenario.instance
    )
    for _round in range(rounds):
        before = (
            len(current.views),
            _total_rows(current),
            len(current.query.where) + len(current.query.having),
        )
        current = shrinker.drop_views(current)
        current = shrinker.ddmin_rows(current)
        current = shrinker.drop_atoms(current)
        after = (
            len(current.views),
            _total_rows(current),
            len(current.query.where) + len(current.query.having),
        )
        if after == before:
            break
    return ShrinkResult(
        scenario=current,
        iterations=shrinker.checks,
        rows_before=rows_before,
        rows_after=_total_rows(current),
        views_before=views_before,
        views_after=len(current.views),
    )

"""View selection: which summary views should the warehouse cache?"""

from .advisor import Recommendation, recommend_views
from .candidates import candidate_for, generate_candidates, merge_candidates

__all__ = [
    "Recommendation",
    "recommend_views",
    "candidate_for",
    "generate_candidates",
    "merge_candidates",
]

"""Candidate summary-view generation from a query workload.

For each aggregation query in the workload we synthesize the summary view
that would answer it through the paper's rewriting machinery:

* grouped by the query's grouping columns *plus* every column the query
  compares against a constant — the Example 1.1 pattern, where ``V1``
  groups by Month and Year so that ``Year = 1995`` survives as a residual
  predicate on a view output;
* carrying, for each aggregate ``AGG(X)`` of the query, the matching view
  aggregate (AVG is carried as SUM so the triangle of Section 4.4 can
  reconstruct it), plus a COUNT output so multiplicities are recoverable
  (condition C4');
* keeping the query's column-to-column (join) conditions, but not its
  constant conditions, so one view serves a family of queries.

Candidates for queries sharing a FROM signature are additionally *merged*
(union of grouping columns and aggregate outputs), which trades view size
for reuse across the workload.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..blocks.exprs import AggFunc, Aggregate
from ..blocks.naming import base_of
from ..blocks.query_block import QueryBlock, SelectItem, ViewDef
from ..blocks.terms import Column, Comparison, Constant
from ..core.canonical import canonical_key


def _is_constant_atom(atom: Comparison) -> bool:
    sides = (atom.left, atom.right)
    return any(isinstance(s, Constant) for s in sides) and any(
        isinstance(s, Column) for s in sides
    )


def _constant_columns(block: QueryBlock) -> list[Column]:
    out = []
    for atom in block.where:
        if _is_constant_atom(atom):
            for side in (atom.left, atom.right):
                if isinstance(side, Column):
                    out.append(side)
    return out


def _view_aggregates(block: QueryBlock) -> list[Aggregate]:
    """The aggregate outputs a view needs to answer ``block``."""
    needed: dict[Aggregate, None] = {}
    for agg in block.all_aggregates():
        if not isinstance(agg.arg, Column):
            continue
        func = AggFunc.SUM if agg.func is AggFunc.AVG else agg.func
        needed[Aggregate(func, agg.arg)] = None
    return list(needed)


def candidate_for(query: QueryBlock) -> QueryBlock | None:
    """The summary-view block tailored to one aggregation query."""
    if query.is_conjunctive or query.distinct:
        return None
    group_cols = list(dict.fromkeys(
        list(query.group_by) + _constant_columns(query)
    ))
    join_atoms = tuple(
        atom for atom in query.where if not _is_constant_atom(atom)
    )
    aggs = _view_aggregates(query)
    count_arg = aggs[0].arg if aggs else (
        group_cols[0] if group_cols else query.from_[0].columns[0]
    )

    select: list[SelectItem] = [SelectItem(c) for c in group_cols]
    names = [f"g_{base_of(c)}" for c in group_cols]
    for i, agg in enumerate(aggs):
        if agg.func is AggFunc.COUNT:
            continue  # the shared COUNT output below covers it
        select.append(SelectItem(agg, alias=f"a{i}"))
        names.append(f"{agg.func.value.lower()}_{base_of(agg.arg)}")
    select.append(
        SelectItem(Aggregate(AggFunc.COUNT, count_arg), alias="cnt")
    )
    names.append("cnt")
    if len(set(names)) != len(names):
        names = [f"o{i}" for i in range(len(select))]

    block = QueryBlock(
        select=tuple(select),
        from_=query.from_,
        where=join_atoms,
        group_by=tuple(group_cols),
    )
    try:
        return block.validate()
    except Exception:
        return None


def _from_signature(block: QueryBlock) -> tuple[str, ...]:
    return tuple(sorted(rel.name for rel in block.from_))


def merge_candidates(
    left: QueryBlock, right: QueryBlock
) -> QueryBlock | None:
    """Union two candidates over the same FROM signature.

    Only merges when the blocks share identical FROM tuples and join
    conditions (candidates built from the same query family do).
    """
    if left.from_ != right.from_ or set(left.where) != set(right.where):
        return None
    group_cols = list(dict.fromkeys(left.group_by + right.group_by))
    aggs: dict[Aggregate, None] = {}
    for block in (left, right):
        for item in block.select:
            if isinstance(item.expr, Aggregate):
                aggs[item.expr] = None
    select = [SelectItem(c) for c in group_cols]
    select += [
        SelectItem(agg, alias=f"a{i}") for i, agg in enumerate(aggs)
    ]
    block = QueryBlock(
        select=tuple(select),
        from_=left.from_,
        where=left.where,
        group_by=tuple(group_cols),
    )
    try:
        return block.validate()
    except Exception:
        return None


def generate_candidates(
    queries: Sequence[QueryBlock], merge: bool = True
) -> list[ViewDef]:
    """Candidate views for a workload, deduplicated by canonical form."""
    blocks: list[QueryBlock] = []
    seen: set[str] = set()

    def add(block: QueryBlock | None):
        if block is None:
            return
        key = canonical_key(block)
        if key not in seen:
            seen.add(key)
            blocks.append(block)

    per_query = [candidate_for(q) for q in queries]
    for block in per_query:
        add(block)

    if merge:
        by_signature: dict[tuple, list[QueryBlock]] = {}
        for block in [b for b in per_query if b is not None]:
            by_signature.setdefault(_from_signature(block), []).append(block)
        for group in by_signature.values():
            for i, left in enumerate(group):
                for right in group[i + 1 :]:
                    add(merge_candidates(left, right))

    views = []
    for i, block in enumerate(blocks):
        names = tuple(f"c{j}" for j in range(len(block.select)))
        views.append(ViewDef(f"Candidate_{i}", block, names))
    return views

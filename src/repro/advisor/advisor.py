"""Greedy view selection under a space budget (paper Section 7).

The paper closes with "developing strategies for determining which views
to cache" as ongoing work; this module provides the standard greedy
benefit-per-space heuristic (in the spirit of Harinarayan, Rajaraman &
Ullman's cube selection, SIGMOD'96) on top of this library's rewriter and
cost model:

1. generate candidate summary views from the workload
   (:mod:`repro.advisor.candidates`);
2. repeatedly pick the candidate whose *benefit* — total workload cost
   saved when queries are answered through the cheapest rewriting — per
   unit of estimated storage is highest;
3. stop when the space budget is exhausted or no candidate helps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from ..blocks.normalize import as_block
from ..blocks.query_block import QueryBlock, ViewDef
from ..catalog.schema import Catalog
from ..core.cost import estimate_cost, estimate_result_rows
from ..core.rewriter import RewriteEngine
from ..obs.budget import SearchBudget
from .candidates import generate_candidates


@dataclass
class QueryPlanReport:
    """How one workload query fares under the chosen views."""

    query: QueryBlock
    direct_cost: float
    best_cost: float
    view_used: Optional[str]

    @property
    def speedup(self) -> float:
        return self.direct_cost / max(self.best_cost, 1e-12)


@dataclass
class Recommendation:
    """The advisor's output."""

    views: list[ViewDef] = field(default_factory=list)
    total_size_rows: float = 0.0
    workload_cost_before: float = 0.0
    workload_cost_after: float = 0.0
    per_query: list[QueryPlanReport] = field(default_factory=list)

    @property
    def workload_speedup(self) -> float:
        return self.workload_cost_before / max(
            self.workload_cost_after, 1e-12
        )

    def summary(self) -> str:
        lines = [
            f"chosen views: {[v.name for v in self.views]}",
            f"estimated storage: {self.total_size_rows:,.0f} rows",
            f"workload cost: {self.workload_cost_before:,.0f} -> "
            f"{self.workload_cost_after:,.0f} "
            f"({self.workload_speedup:,.1f}x)",
        ]
        return "\n".join(lines)


def _workload_cost(
    catalog: Catalog,
    queries: Sequence[QueryBlock],
    views: Sequence[ViewDef],
    search_budget: Optional[SearchBudget] = None,
) -> tuple[float, list[QueryPlanReport]]:
    """Total estimated cost with the given views materialized.

    ``search_budget`` bounds each per-query rewrite probe. A tripped
    budget means the probe may miss a cheaper rewriting — the advisor
    then under-reports a candidate's benefit, which only ever makes the
    recommendation more conservative, never unsound.
    """
    trial = catalog.copy()
    for view in views:
        trial.add_view(view, row_count=int(estimate_result_rows(view.block, catalog)))
    engine = RewriteEngine(trial, use_set_semantics=False, budget=search_budget)
    total = 0.0
    reports = []
    for query in queries:
        direct = estimate_cost(query, trial)
        best_cost = direct
        used = None
        if views:
            result = engine.rewrite(query, views=list(views), max_steps=1)
            if result.ranked and result.ranked[0].cost < best_cost:
                best_cost = result.ranked[0].cost
                used = ", ".join(result.ranked[0].rewriting.view_names)
        total += best_cost
        reports.append(QueryPlanReport(query, direct, best_cost, used))
    return total, reports


def recommend_views(
    catalog: Catalog,
    workload: Sequence[Union[str, QueryBlock]],
    space_budget_rows: float = float("inf"),
    candidates: Optional[Sequence[ViewDef]] = None,
    max_views: int = 8,
    search_budget: Optional[SearchBudget] = None,
) -> Recommendation:
    """Choose summary views to materialize for a query workload.

    ``space_budget_rows`` caps the summed *estimated* cardinality of the
    chosen views. Candidate views default to workload-derived summaries.
    ``search_budget`` caps each rewrite probe the greedy loop makes, so
    advising over a large workload has a bounded worst case.
    """
    queries = [as_block(q, catalog) for q in workload]
    pool = list(
        candidates
        if candidates is not None
        else generate_candidates(queries)
    )
    base_cost, _ = _workload_cost(catalog, queries, [], search_budget)

    # A candidate's estimated size never changes across greedy rounds;
    # estimating it once keeps the loop's work to the cost probes.
    sizes = {
        id(candidate): estimate_result_rows(candidate.block, catalog)
        for candidate in pool
    }

    chosen: list[ViewDef] = []
    used_space = 0.0
    current_cost = base_cost
    while pool and len(chosen) < max_views:
        best = None
        for candidate in pool:
            size = sizes[id(candidate)]
            if used_space + size > space_budget_rows:
                continue
            cost, _ = _workload_cost(
                catalog, queries, chosen + [candidate], search_budget
            )
            gain = current_cost - cost
            if gain <= 0:
                continue
            score = gain / max(size, 1.0)
            if best is None or score > best[0]:
                best = (score, candidate, cost, size)
        if best is None:
            break
        _score, candidate, cost, size = best
        chosen.append(candidate)
        pool.remove(candidate)
        used_space += size
        current_cost = cost

    final_cost, reports = _workload_cost(
        catalog, queries, chosen, search_budget
    )
    return Recommendation(
        views=chosen,
        total_size_rows=used_space,
        workload_cost_before=base_cost,
        workload_cost_after=final_cost,
        per_query=reports,
    )

"""Hierarchical trace spans for the rewrite pipeline.

The rewrite path (parse → normalize → signature-index probe → mapping
enumeration → C1–C4 checks → merge → maximality) reports where time went
through module-level :func:`span` / :func:`add_counter` calls, so the
instrumentation needs no tracer argument plumbed through every function.

Two properties drive the design:

near-zero overhead when disabled
    With no active tracer, :func:`span` returns a shared no-op context
    (no allocation at all) and :func:`add_counter` is one global read.
    Enabling a tracer is an explicit, scoped act (:func:`tracing`).

stage-shaped trees
    Hot inner stages run once per BFS node; a naive tracer would emit
    thousands of children. Spans instead *merge by name* under their
    parent — re-entering ``mapping_enumeration`` accumulates seconds and
    a call count into the same node — so the tree mirrors the pipeline's
    stages, not the search's size.

The finished tree is surfaced as a :class:`RewriteTrace` on
:class:`repro.core.rewriter.RewriteResult` and printed by
``repro explain --trace`` / ``repro rewrite --trace``.

The active tracer is thread-local: the rewrite path is synchronous
within one thread, and the batch service (:mod:`repro.service`) runs one
engine per worker thread, so traces from concurrent requests never
interleave. :func:`merge_spans` stitches finished per-request trees into
one batch-level tree.
"""

from __future__ import annotations

import threading
import time
from typing import Iterable, Optional


class Span:
    """One named pipeline stage: accumulated seconds, calls, children."""

    __slots__ = ("name", "seconds", "count", "children")

    def __init__(self, name: str):
        self.name = name
        self.seconds = 0.0
        self.count = 0
        self.children: dict[str, Span] = {}

    def child(self, name: str) -> "Span":
        node = self.children.get(name)
        if node is None:
            node = self.children[name] = Span(name)
        return node

    def as_dict(self) -> dict:
        out: dict = {
            "seconds": round(self.seconds, 6),
            "count": self.count,
        }
        if self.children:
            out["children"] = {
                name: child.as_dict()
                for name, child in self.children.items()
            }
        return out

    def total_spans(self) -> int:
        return 1 + sum(c.total_spans() for c in self.children.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.seconds:.6f}s x{self.count})"


class _SpanContext:
    """The context manager returned by an *active* tracer's span()."""

    __slots__ = ("tracer", "name", "started", "span")

    def __init__(self, tracer: "Tracer", name: str):
        self.tracer = tracer
        self.name = name

    def __enter__(self) -> Span:
        parent = self.tracer._stack[-1]
        self.span = parent.child(self.name)
        self.tracer._stack.append(self.span)
        self.started = time.perf_counter()
        return self.span

    def __exit__(self, *exc) -> bool:
        self.span.seconds += time.perf_counter() - self.started
        self.span.count += 1
        self.tracer._stack.pop()
        return False


class _NullContext:
    """Shared do-nothing context for the tracing-disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NULL_CONTEXT = _NullContext()
_STATE = threading.local()


class Tracer:
    """Collects one span tree plus flat counters for a rewrite call."""

    def __init__(self, root_name: str = "rewrite"):
        self.root = Span(root_name)
        self._stack: list[Span] = [self.root]
        self.counters: dict[str, int] = {}
        self._started = time.perf_counter()

    def span(self, name: str) -> _SpanContext:
        return _SpanContext(self, name)

    def add(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def finish(self) -> Span:
        """Close the root span (idempotent) and return it."""
        if self.root.count == 0:
            self.root.seconds = time.perf_counter() - self._started
            self.root.count = 1
        return self.root


class tracing:
    """Activate ``tracer`` for the dynamic extent of a ``with`` block."""

    __slots__ = ("tracer", "_previous")

    def __init__(self, tracer: Tracer):
        self.tracer = tracer

    def __enter__(self) -> Tracer:
        self._previous = getattr(_STATE, "tracer", None)
        _STATE.tracer = self.tracer
        return self.tracer

    def __exit__(self, *exc) -> bool:
        _STATE.tracer = self._previous
        return False


def current_tracer() -> Optional[Tracer]:
    return getattr(_STATE, "tracer", None)


def span(name: str):
    """A span context for ``name`` — the shared no-op when tracing is off."""
    tracer = getattr(_STATE, "tracer", None)
    if tracer is None:
        return _NULL_CONTEXT
    return tracer.span(name)


def add_counter(name: str, n: int = 1) -> None:
    """Bump a flat counter on the active tracer (no-op when disabled)."""
    tracer = getattr(_STATE, "tracer", None)
    if tracer is not None:
        tracer.add(name, n)


def merge_spans(
    roots: Iterable[Span], name: str = "batch"
) -> Span:
    """Stitch finished span trees into one tree under a fresh root.

    Children merge by name exactly as live spans do — seconds and call
    counts accumulate — so a batch of traced rewrites reports one
    stage-shaped tree, not one subtree per request. Inputs are left
    untouched.
    """
    merged = Span(name)

    def fold(target: Span, source: Span) -> None:
        target.seconds += source.seconds
        target.count += source.count
        for child in source.children.values():
            fold(target.child(child.name), child)

    for root in roots:
        fold(merged.child(root.name), root)
        merged.seconds += root.seconds
        merged.count = 1
    return merged


class RewriteTrace:
    """The observable outcome of one instrumented rewrite call.

    ``root`` is the merged span tree; ``counters`` are flat search
    counters (planner stats deltas plus budget consumption); ``budget``
    is the meter snapshot when a budget was supplied.
    """

    def __init__(
        self,
        root: Span,
        counters: Optional[dict] = None,
        budget: Optional[dict] = None,
    ):
        self.root = root
        self.counters = dict(counters or {})
        self.budget = budget

    @property
    def exhausted(self) -> bool:
        return bool(self.budget and self.budget.get("exhausted"))

    def stage_seconds(self) -> dict[str, float]:
        """Flat ``stage name -> accumulated seconds`` over the tree.

        Stages that appear at several depths (the same name re-entered
        under different parents) are summed.
        """
        out: dict[str, float] = {}

        def walk(node: Span) -> None:
            out[node.name] = out.get(node.name, 0.0) + node.seconds
            for child in node.children.values():
                walk(child)

        for child in self.root.children.values():
            walk(child)
        return out

    def as_dict(self) -> dict:
        out: dict = {
            "spans": {self.root.name: self.root.as_dict()},
            "counters": self.counters,
        }
        if self.budget is not None:
            out["budget"] = self.budget
        return out

    def format(self) -> str:
        """A fixed-width tree for the CLI (milliseconds, call counts)."""
        lines: list[str] = []

        def walk(node: Span, prefix: str, is_last: bool, is_root: bool) -> None:
            if is_root:
                label, child_prefix = node.name, ""
            else:
                branch = "`- " if is_last else "|- "
                label = prefix + branch + node.name
                child_prefix = prefix + ("   " if is_last else "|  ")
            calls = f" x{node.count}" if node.count > 1 else ""
            lines.append(
                f"{label:<40} {node.seconds * 1e3:10.3f} ms{calls}"
            )
            kids = list(node.children.values())
            for i, child in enumerate(kids):
                walk(child, child_prefix, i == len(kids) - 1, False)

        walk(self.root, "", True, True)
        if self.counters:
            lines.append("counters:")
            for name in sorted(self.counters):
                lines.append(f"  {name} = {self.counters[name]}")
        if self.budget is not None:
            lines.append(
                "budget: exhausted="
                + str(self.budget.get("exhausted"))
                + (
                    f" tripped={','.join(self.budget.get('tripped', []))}"
                    if self.budget.get("tripped")
                    else ""
                )
                + f" mappings={self.budget.get('mappings_enumerated')}"
                + f" candidates={self.budget.get('candidates_generated')}"
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.format()

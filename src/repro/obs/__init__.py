"""Observability + robustness for the rewrite search.

Two orthogonal facilities, both threaded through the whole rewrite path
(:mod:`repro.core.planner`, :mod:`repro.core.multiview`,
:mod:`repro.mappings.enumerate_mappings`, :mod:`repro.core.rewriter`):

* :mod:`repro.obs.trace` — hierarchical stage spans and counters with a
  no-op fast path when disabled, surfaced as ``RewriteResult.trace`` and
  ``repro explain --trace``;
* :mod:`repro.obs.budget` — per-search limits (wall-clock deadline,
  mapping and candidate caps) with anytime degradation: partial-but-
  sound results tagged ``exhausted=True`` instead of exceptions;
* :mod:`repro.obs.metrics` — production counters/gauges/histograms with
  Prometheus text exposition and picklable, mergeable snapshots,
  sharing the tracer's free-when-off hoisted-``None`` discipline.

See ``docs/observability.md`` for the user-facing guide.
"""

from .budget import BudgetMeter, SearchBudget, ensure_meter
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    METRICS_SCHEMA,
    MetricsRegistry,
    MetricsSnapshot,
    collecting,
    current_metrics,
    render_prometheus,
    set_global_metrics,
    timed,
)
from .trace import (
    RewriteTrace,
    Span,
    Tracer,
    add_counter,
    current_tracer,
    merge_spans,
    span,
    tracing,
)

__all__ = [
    "BudgetMeter",
    "SearchBudget",
    "ensure_meter",
    "DEFAULT_LATENCY_BUCKETS",
    "METRICS_SCHEMA",
    "MetricsRegistry",
    "MetricsSnapshot",
    "collecting",
    "current_metrics",
    "render_prometheus",
    "set_global_metrics",
    "timed",
    "RewriteTrace",
    "Span",
    "Tracer",
    "add_counter",
    "current_tracer",
    "merge_spans",
    "span",
    "tracing",
]

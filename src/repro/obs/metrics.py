"""Production metrics: counters, gauges and histograms for the pipeline.

The registry mirrors the tracer's design contract
(:mod:`repro.obs.trace`): instrumentation is *free when off*. There is
no global default registry object and no null-object pattern — hot
paths call :func:`current_metrics` once, hoist the result, and branch
on ``None``:

.. code-block:: python

    metrics = current_metrics()
    ...
    if metrics is not None:
        metrics.counter("repro_planner_searches_total").inc()

Three metric kinds, all supporting labeled families:

``Counter``
    monotonically increasing count (``_total`` names by convention);
``Gauge``
    a value that can go up and down (sizes, occupancy);
``Histogram``
    observations bucketed over a fixed exponential ladder
    (:data:`DEFAULT_LATENCY_BUCKETS`) with the *exact* count and sum
    kept alongside, so mean latency is never a bucket approximation.

Thread-safety: value updates take the owning registry's lock, so a
registry shared across threads (the CLI global, the batch service in
thread mode) never loses increments. The service additionally runs each
chunk under its own scoped registry (:class:`collecting`) and folds the
picklable :class:`MetricsSnapshot` back into the parent exactly once —
the same merge discipline as planner memos and cache stats — which is
what keeps process-mode workers and the no-double-counting contract
honest (see ``docs/observability.md``).

Exposition: :meth:`MetricsRegistry.render_prometheus` (and the same
method on snapshots) emits the Prometheus text format, served by
``repro metrics`` and the ``--metrics-out FILE`` flag; snapshots also
serialize to the ``repro-metrics/1`` JSON shape carried on
``RewriteResponse``/``BatchResult`` envelopes and in the periodic
frames ``repro serve-sql`` emits.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from typing import Optional, Sequence, Union

METRICS_SCHEMA = "repro-metrics/1"

#: Fixed exponential latency ladder (seconds): 250 µs doubling to ~8 s.
#: Decimal-friendly endpoints so the rendered ``le`` labels stay exact.
DEFAULT_LATENCY_BUCKETS = (
    0.00025,
    0.0005,
    0.001,
    0.002,
    0.004,
    0.008,
    0.016,
    0.032,
    0.064,
    0.128,
    0.256,
    0.512,
    1.024,
    2.048,
    4.096,
    8.192,
)

_VALID_KINDS = ("counter", "gauge", "histogram")


# ----------------------------------------------------------------------
# Metric children (one labeled series each)
# ----------------------------------------------------------------------


class Counter:
    """A monotonically increasing series. Negative increments raise."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.RLock):
        self._lock = lock
        self.value = 0

    def inc(self, n: Union[int, float] = 1) -> None:
        if n < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self.value += n


class Gauge:
    """A series that can move both ways (sizes, occupancy, rates)."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.RLock):
        self._lock = lock
        self.value = 0

    def set(self, value: Union[int, float]) -> None:
        with self._lock:
            self.value = value

    def inc(self, n: Union[int, float] = 1) -> None:
        with self._lock:
            self.value += n

    def dec(self, n: Union[int, float] = 1) -> None:
        with self._lock:
            self.value -= n


class Histogram:
    """Bucketed observations plus the exact count and sum.

    ``bounds`` are inclusive upper bounds; ``counts`` holds one slot per
    bound plus a final overflow (``+Inf``) slot. Bucket counts are
    stored per-bucket and cumulated only at render time, which keeps
    :meth:`observe` to one bisect and three writes.
    """

    __slots__ = ("_lock", "bounds", "counts", "count", "sum")

    def __init__(self, lock: threading.RLock, bounds: Sequence[float]):
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram bounds must increase: {bounds!r}")
        self._lock = lock
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: Union[int, float]) -> None:
        with self._lock:
            self.counts[bisect_left(self.bounds, value)] += 1
            self.count += 1
            self.sum += value


# ----------------------------------------------------------------------
# Labeled families
# ----------------------------------------------------------------------


class MetricFamily:
    """One named family: fixed label names, one child per label values.

    A family declared with no label names proxies the single unlabeled
    child, so ``registry.counter("x").inc()`` works without a
    ``labels()`` hop.
    """

    __slots__ = (
        "name",
        "kind",
        "help",
        "labelnames",
        "buckets",
        "_lock",
        "_children",
    )

    def __init__(
        self,
        name: str,
        kind: str,
        help: str,
        labelnames: Sequence[str],
        lock: threading.RLock,
        buckets: Optional[Sequence[float]] = None,
    ):
        self.name = name
        self.kind = kind
        self.help = help
        self.labelnames = tuple(labelnames)
        self.buckets = tuple(buckets) if buckets is not None else None
        self._lock = lock
        self._children: dict[tuple, object] = {}

    def labels(self, *values, **by_name):
        """The child series for one label-value combination."""
        if by_name:
            if values:
                raise TypeError("pass labels positionally or by name, not both")
            try:
                values = tuple(by_name[n] for n in self.labelnames)
            except KeyError as exc:
                raise ValueError(
                    f"{self.name}: missing label {exc.args[0]!r}"
                ) from None
            if len(by_name) != len(self.labelnames):
                extra = set(by_name) - set(self.labelnames)
                raise ValueError(f"{self.name}: unknown labels {sorted(extra)}")
        else:
            values = tuple(str(v) if not isinstance(v, str) else v for v in values)
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {len(values)} value(s)"
            )
        values = tuple(str(v) if not isinstance(v, str) else v for v in values)
        child = self._children.get(values)
        if child is None:
            with self._lock:
                child = self._children.get(values)
                if child is None:
                    child = self._make_child()
                    self._children[values] = child
        return child

    def _make_child(self):
        if self.kind == "counter":
            return Counter(self._lock)
        if self.kind == "gauge":
            return Gauge(self._lock)
        return Histogram(self._lock, self.buckets or DEFAULT_LATENCY_BUCKETS)

    # Unlabeled-family conveniences --------------------------------------

    def _solo(self):
        if self.labelnames:
            raise ValueError(
                f"{self.name} is labeled by {self.labelnames}; call .labels()"
            )
        return self.labels()

    def inc(self, n: Union[int, float] = 1) -> None:
        self._solo().inc(n)

    def dec(self, n: Union[int, float] = 1) -> None:
        self._solo().dec(n)

    def set(self, value: Union[int, float]) -> None:
        self._solo().set(value)

    def observe(self, value: Union[int, float]) -> None:
        self._solo().observe(value)

    @property
    def value(self):
        return self._solo().value

    def items(self):
        """``(label_values_tuple, child)`` pairs, insertion-ordered."""
        return list(self._children.items())


# ----------------------------------------------------------------------
# Snapshot: picklable, mergeable, renderable
# ----------------------------------------------------------------------


class MetricsSnapshot:
    """A frozen, picklable copy of a registry's state.

    ``families`` maps name -> ``{"kind", "help", "labelnames",
    "samples"}`` where each sample is ``[label_values, value]`` —
    scalars for counters/gauges, ``{"count", "sum", "bounds",
    "counts"}`` for histograms. Snapshots merge (counters/histograms
    add, gauges last-write-wins) so worker registries fold back into a
    parent without double counting.
    """

    __slots__ = ("families",)

    def __init__(self, families: Optional[dict] = None):
        self.families = families if families is not None else {}

    def as_dict(self) -> dict:
        return {"schema": METRICS_SCHEMA, "families": self.families}

    @classmethod
    def from_dict(cls, doc: dict) -> "MetricsSnapshot":
        if doc.get("schema") not in (None, METRICS_SCHEMA):
            raise ValueError(f"not a {METRICS_SCHEMA} document: {doc.get('schema')!r}")
        return cls(doc.get("families", {}))

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Fold ``other`` into this snapshot in place (and return self)."""
        for name, fam in other.families.items():
            mine = self.families.get(name)
            if mine is None:
                self.families[name] = _copy_family(fam)
                continue
            if mine["kind"] != fam["kind"]:
                raise ValueError(
                    f"{name}: cannot merge {fam['kind']} into {mine['kind']}"
                )
            index = {tuple(lv): sample for lv, sample in
                     ((s[0], s) for s in mine["samples"])}
            for labels, value in fam["samples"]:
                sample = index.get(tuple(labels))
                if sample is None:
                    mine["samples"].append([list(labels), _copy_value(value)])
                    continue
                sample[1] = _merge_value(mine["kind"], sample[1], value, name)
        return self

    def render_prometheus(self) -> str:
        return render_prometheus(self)

    def counter_value(self, name: str, **labels) -> Union[int, float]:
        """Test/introspection helper: one sample's value (0 if absent)."""
        fam = self.families.get(name)
        if fam is None:
            return 0
        want = [labels.get(n, "") for n in fam["labelnames"]]
        for label_values, value in fam["samples"]:
            if list(label_values) == want:
                return value
        return 0


def _copy_value(value):
    if isinstance(value, dict):
        out = dict(value)
        out["counts"] = list(value["counts"])
        out["bounds"] = list(value["bounds"])
        return out
    return value


def _copy_family(fam: dict) -> dict:
    return {
        "kind": fam["kind"],
        "help": fam["help"],
        "labelnames": list(fam["labelnames"]),
        "samples": [[list(lv), _copy_value(v)] for lv, v in fam["samples"]],
    }


def _merge_value(kind: str, mine, theirs, name: str):
    if kind == "counter":
        return mine + theirs
    if kind == "gauge":
        return theirs
    if list(mine["bounds"]) != list(theirs["bounds"]):
        raise ValueError(f"{name}: histogram bucket bounds differ; cannot merge")
    return {
        "count": mine["count"] + theirs["count"],
        "sum": mine["sum"] + theirs["sum"],
        "bounds": list(mine["bounds"]),
        "counts": [a + b for a, b in zip(mine["counts"], theirs["counts"])],
    }


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------


class MetricsRegistry:
    """A thread-safe, insertion-ordered collection of metric families."""

    def __init__(self):
        self._lock = threading.RLock()
        self._families: dict[str, MetricFamily] = {}

    # Family declaration (get-or-create; idempotent) ---------------------

    def _family(
        self,
        name: str,
        kind: str,
        help: str,
        labelnames: Sequence[str],
        buckets: Optional[Sequence[float]] = None,
    ) -> MetricFamily:
        family = self._families.get(name)
        if family is not None:
            if family.kind != kind:
                raise ValueError(
                    f"{name} already registered as a {family.kind}"
                )
            return family
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = MetricFamily(
                    name, kind, help, labelnames, self._lock, buckets
                )
                self._families[name] = family
        return family

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> MetricFamily:
        return self._family(name, "counter", help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> MetricFamily:
        return self._family(name, "gauge", help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> MetricFamily:
        return self._family(name, "histogram", help, labelnames, buckets)

    def get(self, name: str) -> Optional[MetricFamily]:
        return self._families.get(name)

    # Snapshot / merge / reset ------------------------------------------

    def snapshot(self) -> MetricsSnapshot:
        families: dict[str, dict] = {}
        with self._lock:
            for name, family in self._families.items():
                samples = []
                for label_values, child in family._children.items():
                    if family.kind == "histogram":
                        value: object = {
                            "count": child.count,
                            "sum": child.sum,
                            "bounds": list(child.bounds),
                            "counts": list(child.counts),
                        }
                    else:
                        value = child.value
                    samples.append([list(label_values), value])
                families[name] = {
                    "kind": family.kind,
                    "help": family.help,
                    "labelnames": list(family.labelnames),
                    "samples": samples,
                }
        return MetricsSnapshot(families)

    def merge(
        self, other: Union["MetricsRegistry", MetricsSnapshot, dict]
    ) -> None:
        """Fold a snapshot (or another registry) into this registry.

        Counters and histograms accumulate; gauges take the incoming
        value. Call exactly once per worker snapshot — the caller owns
        the no-double-counting discipline.
        """
        if isinstance(other, MetricsRegistry):
            other = other.snapshot()
        elif isinstance(other, dict):
            other = MetricsSnapshot.from_dict(other)
        with self._lock:
            for name, fam in other.families.items():
                kind = fam["kind"]
                if kind not in _VALID_KINDS:
                    raise ValueError(f"{name}: unknown metric kind {kind!r}")
                buckets = None
                if kind == "histogram" and fam["samples"]:
                    buckets = fam["samples"][0][1]["bounds"]
                family = self._family(
                    name, kind, fam["help"], fam["labelnames"], buckets
                )
                for label_values, value in fam["samples"]:
                    child = family.labels(*label_values)
                    if kind == "counter":
                        child.value += value
                    elif kind == "gauge":
                        child.value = value
                    else:
                        if list(child.bounds) != list(value["bounds"]):
                            raise ValueError(
                                f"{name}: histogram bucket bounds differ"
                            )
                        child.count += value["count"]
                        child.sum += value["sum"]
                        for i, n in enumerate(value["counts"]):
                            child.counts[i] += n

    def reset(self) -> None:
        """Zero every series in place (families and children survive)."""
        with self._lock:
            for family in self._families.values():
                for child in family._children.values():
                    if isinstance(child, Histogram):
                        child.counts = [0] * len(child.counts)
                        child.count = 0
                        child.sum = 0.0
                    else:
                        child.value = 0

    def as_dict(self) -> dict:
        return self.snapshot().as_dict()

    def render_prometheus(self) -> str:
        return self.snapshot().render_prometheus()


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_number(value: Union[int, float]) -> str:
    if isinstance(value, bool):  # bool is an int; be explicit
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    text = f"{value:.10g}"
    return text


def _label_block(names: Sequence[str], values: Sequence[str]) -> str:
    if not names:
        return ""
    inner = ",".join(
        f'{n}="{_escape_label(v)}"' for n, v in zip(names, values)
    )
    return "{" + inner + "}"


def render_prometheus(
    source: Union[MetricsRegistry, MetricsSnapshot]
) -> str:
    """Render a registry or snapshot in the Prometheus text format.

    One ``# HELP`` / ``# TYPE`` pair per family, samples sorted by
    label values, histograms expanded to cumulative ``_bucket`` series
    plus exact ``_sum`` and ``_count``. The output ends with a newline
    as the format requires.
    """
    snapshot = (
        source.snapshot() if isinstance(source, MetricsRegistry) else source
    )
    lines: list[str] = []
    for name in sorted(snapshot.families):
        fam = snapshot.families[name]
        help_text = fam["help"] or name
        lines.append(f"# HELP {name} {_escape_help(help_text)}")
        lines.append(f"# TYPE {name} {fam['kind']}")
        labelnames = fam["labelnames"]
        for label_values, value in sorted(
            fam["samples"], key=lambda sample: sample[0]
        ):
            block = _label_block(labelnames, label_values)
            if fam["kind"] != "histogram":
                lines.append(f"{name}{block} {_format_number(value)}")
                continue
            cumulative = 0
            for bound, count in zip(
                list(value["bounds"]) + [float("inf")], value["counts"]
            ):
                cumulative += count
                le = _format_number(float(bound))
                bucket_labels = _label_block(
                    list(labelnames) + ["le"], list(label_values) + [le]
                )
                lines.append(f"{name}_bucket{bucket_labels} {cumulative}")
            lines.append(f"{name}_sum{block} {_format_number(value['sum'])}")
            lines.append(f"{name}_count{block} {value['count']}")
    return "\n".join(lines) + "\n" if lines else ""


# ----------------------------------------------------------------------
# Active-registry plumbing (hoisted-None discipline)
# ----------------------------------------------------------------------

_TLS = threading.local()
_GLOBAL: Optional[MetricsRegistry] = None


def current_metrics() -> Optional[MetricsRegistry]:
    """The active registry, or ``None`` when metrics are off.

    A thread-scoped registry (:class:`collecting`) shadows the process
    global (:func:`set_global_metrics`). Hot paths call this once and
    branch on ``None`` — never wrap work in a null object.
    """
    registry = getattr(_TLS, "registry", None)
    if registry is not None:
        return registry
    return _GLOBAL


def set_global_metrics(
    registry: Optional[MetricsRegistry],
) -> Optional[MetricsRegistry]:
    """Install (or clear, with ``None``) the process-wide registry.

    Returns the previous global so callers can restore it. The global
    is what CLI commands and thread-mode service workers inherit.
    """
    global _GLOBAL
    previous = _GLOBAL
    _GLOBAL = registry
    return previous


class collecting:
    """Activate ``registry`` for this thread's dynamic extent.

    Nests: the previous thread-scoped registry (or the global) is
    restored on exit. The batch service runs each chunk under its own
    ``collecting`` block and merges the snapshot back exactly once.
    """

    __slots__ = ("registry", "_previous")

    def __init__(self, registry: MetricsRegistry):
        self.registry = registry

    def __enter__(self) -> MetricsRegistry:
        self._previous = getattr(_TLS, "registry", None)
        _TLS.registry = self.registry
        return self.registry

    def __exit__(self, *exc) -> bool:
        _TLS.registry = self._previous
        return False


class timed:
    """Time a block; optionally observe the elapsed seconds somewhere.

    The one shared timing helper (replaces hand-rolled
    ``time.perf_counter()`` pairs):

    .. code-block:: python

        with timed() as t:
            run()
        print(t.seconds)

        with timed("repro_query_seconds"):   # -> active registry, if any
            run()

    ``target`` may be ``None`` (just measure), a histogram/family
    (observed directly), or a metric name resolved against the active
    registry at exit — still free when metrics are off.
    """

    __slots__ = ("target", "started", "seconds")

    def __init__(self, target=None):
        self.target = target
        self.seconds = 0.0

    def __enter__(self) -> "timed":
        self.started = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self.seconds = time.perf_counter() - self.started
        target = self.target
        if target is not None:
            if isinstance(target, str):
                registry = current_metrics()
                if registry is not None:
                    registry.histogram(target).observe(self.seconds)
            else:
                target.observe(self.seconds)
        return False

"""The always-on rewriting daemon (``repro serve``) and its client.

Layers, bottom up:

:mod:`repro.serving.memo`
    the persistent cross-request memo tier — epoch-stamped planner
    substitution memos in a ``multiprocessing.shared_memory`` segment
    (single writer, seqlock-framed readers), with a plain-dict fallback;
:mod:`repro.serving.admission`
    bounded request queue and per-tenant quotas; overload refuses
    in-band, never drops a connection;
:mod:`repro.serving.protocol`
    the ``repro-api/1`` JSONL wire format and the strategy registry
    (the planner extension point);
:mod:`repro.serving.worker`
    request execution with shared-memo warm start (the epoch protocol's
    reader side);
:mod:`repro.serving.daemon`
    the asyncio TCP/Unix server tying it together, including
    maintenance-delta cache invalidation;
:mod:`repro.serving.client`
    the blocking JSONL client behind :func:`repro.api.connect`.

See ``docs/serving.md``.
"""

from .admission import (
    DEFAULT_TENANT,
    QUEUE_FULL,
    TENANT_QUOTA,
    AdmissionController,
    TenantQuota,
)
from .client import ServingClient, ServingClientError, parse_address
from .daemon import RewriteDaemon
from .memo import (
    DEFAULT_CAPACITY,
    LocalMemoTier,
    MemoEntry,
    SharedMemoTier,
    create_memo_tier,
)
from .protocol import (
    DEFAULT_STRATEGY,
    OPS,
    ProtocolError,
    parse_line,
    register_strategy,
    request_from_wire,
    resolve_strategy,
    serving_group_key,
    strategy_names,
)
from .worker import COLD, WARM_LOCAL, WARM_SHARED, PlannerCache

__all__ = [
    "AdmissionController",
    "COLD",
    "DEFAULT_CAPACITY",
    "DEFAULT_STRATEGY",
    "DEFAULT_TENANT",
    "LocalMemoTier",
    "MemoEntry",
    "OPS",
    "PlannerCache",
    "ProtocolError",
    "QUEUE_FULL",
    "RewriteDaemon",
    "ServingClient",
    "ServingClientError",
    "SharedMemoTier",
    "TENANT_QUOTA",
    "TenantQuota",
    "WARM_LOCAL",
    "WARM_SHARED",
    "create_memo_tier",
    "parse_address",
    "parse_line",
    "register_strategy",
    "request_from_wire",
    "resolve_strategy",
    "serving_group_key",
    "strategy_names",
]

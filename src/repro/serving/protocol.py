"""The ``repro-api/1`` JSONL wire protocol of the serving daemon.

One request per line, one response per line, both JSON objects. Every
response is the consolidated envelope (:func:`repro.api.to_envelope`):
top-level ``schema`` / ``kind`` / ``ok`` and exactly one of ``result``
or ``error``, plus the request's ``id`` echoed back so clients may
pipeline.

Request objects::

    {"op": "rewrite", "sql": "SELECT ...", "id": "r1",
     "tenant": "dash", "views": ["Monthly"], "strategy": "default",
     "deadline_ms": 50, "max_mappings": null, "max_candidates": null,
     "max_steps": 3, "unfold": false}
    {"op": "update", "table": "Calls", "insert": [[...], ...],
     "delete": [[...], ...]}
    {"op": "ping"} | {"op": "metrics"} | {"op": "shutdown"}

``op`` defaults to ``rewrite`` when the object carries ``sql``/
``query``, so the line format is a superset of ``repro batch`` input.

The ``strategy`` field is the planner extension point: it names a
registered request runner. ``"default"`` is the plain executor (which
honors whatever ``strategy`` the request itself carries); ``"c1c4"``,
``"cohen_nutt"`` and ``"both"`` pin the engine-level strategies of
:mod:`repro.strategies` — ``cohen_nutt``/``both`` add the Cohen–Nutt
complete-rewriting extras to the C1–C4 result set. Unknown strategies
refuse in-band with the known names listed.
"""

from __future__ import annotations

import json
from typing import Callable, Optional

from ..catalog.schema import Catalog
from ..errors import ReproError
from ..obs.budget import SearchBudget
from ..service.batcher import view_fingerprint
from ..service.executor import execute_request
from ..service.requests import RewriteRequest, RewriteResponse

#: Ops a daemon understands.
OPS = ("rewrite", "update", "ping", "metrics", "shutdown")

#: The default strategy name every request gets.
DEFAULT_STRATEGY = "default"


class ProtocolError(ReproError):
    """A request line the daemon could not make sense of."""


# ----------------------------------------------------------------------
# Strategy registry (the per-request planner extension point)

#: A strategy runs one request on a (possibly warm) planner/engine and
#: returns a RewriteResponse. Signature matches execute_request's
#: keyword surface so new strategies can reuse the shared executor.
StrategyRunner = Callable[..., RewriteResponse]


def _default_strategy(request, **kwargs) -> RewriteResponse:
    return execute_request(request, capture_errors=True, **kwargs)


def _pinned_strategy(name: str) -> StrategyRunner:
    """A runner that forces the engine-level strategy ``name``."""

    def run(request, **kwargs) -> RewriteResponse:
        from dataclasses import replace

        return execute_request(
            replace(request, strategy=name), capture_errors=True, **kwargs
        )

    return run


_STRATEGIES: dict[str, StrategyRunner] = {
    DEFAULT_STRATEGY: _default_strategy,
    "c1c4": _pinned_strategy("c1c4"),
    "cohen_nutt": _pinned_strategy("cohen_nutt"),
    "both": _pinned_strategy("both"),
}


def register_strategy(name: str, runner: StrategyRunner) -> None:
    """Register a request-execution strategy under ``name``."""
    _STRATEGIES[name] = runner


def strategy_names() -> tuple[str, ...]:
    return tuple(sorted(_STRATEGIES))


def resolve_strategy(name: Optional[str]) -> StrategyRunner:
    runner = _STRATEGIES.get(name or DEFAULT_STRATEGY)
    if runner is None:
        raise ProtocolError(
            f"unknown strategy {name!r}; known: "
            + ", ".join(strategy_names())
        )
    return runner


# ----------------------------------------------------------------------
# Request parsing

def parse_line(line: str, line_no: int = 0) -> dict:
    """One wire line -> a validated op object."""
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as error:
        raise ProtocolError(
            f"line {line_no}: not valid JSON ({error})"
        ) from error
    if isinstance(obj, str):
        obj = {"op": "rewrite", "sql": obj}
    if not isinstance(obj, dict):
        raise ProtocolError(f"line {line_no}: expected a JSON object")
    op = obj.get("op")
    if op is None:
        op = "rewrite" if ("sql" in obj or "query" in obj) else None
        obj["op"] = op
    if op not in OPS:
        raise ProtocolError(
            f"line {line_no}: unknown op {op!r}; known: "
            + ", ".join(OPS)
        )
    return obj


def budget_from_wire(obj: dict) -> Optional[SearchBudget]:
    deadline_ms = obj.get("deadline_ms")
    max_mappings = obj.get("max_mappings")
    max_candidates = obj.get("max_candidates")
    if (
        deadline_ms is None
        and max_mappings is None
        and max_candidates is None
    ):
        return None
    return SearchBudget(
        deadline=deadline_ms / 1000.0 if deadline_ms is not None else None,
        max_mappings=max_mappings,
        max_candidates=max_candidates,
    )


def request_from_wire(
    obj: dict, catalog: Catalog, line_no: int = 0
) -> RewriteRequest:
    """A ``rewrite`` op object -> the service's RewriteRequest."""
    sql = obj.get("sql", obj.get("query"))
    if not isinstance(sql, str) or not sql.strip():
        raise ProtocolError(
            f"line {line_no}: 'sql' must be a non-empty SELECT string"
        )
    views = None
    if obj.get("views") is not None:
        names = obj["views"]
        if not isinstance(names, list):
            raise ProtocolError(
                f"line {line_no}: 'views' must be a list of view names"
            )
        try:
            views = tuple(catalog.view(name) for name in names)
        except ReproError as error:
            raise ProtocolError(f"line {line_no}: {error}") from error
    request_id = obj.get("id")
    from ..strategies import STRATEGY_NAMES

    wire_strategy = obj.get("strategy")
    return RewriteRequest(
        query=sql,
        catalog=catalog,
        views=views,
        budget=budget_from_wire(obj),
        max_steps=int(obj.get("max_steps", 3)),
        unfold=bool(obj.get("unfold", False)),
        collect_metrics=bool(obj.get("collect_metrics", False)),
        request_id=str(request_id) if request_id is not None else None,
        # Engine-level names ride in the request itself; other values
        # (e.g. "default", or a runner registered by an extension) are
        # the runner's business — resolve_strategy already vetted them.
        strategy=(
            wire_strategy if wire_strategy in STRATEGY_NAMES else "c1c4"
        ),
    )


# ----------------------------------------------------------------------
# Serving fingerprints

def serving_group_key(request: RewriteRequest) -> tuple:
    """The shared-memo fingerprint of one request.

    A refinement of :func:`repro.service.batcher.request_group_key`
    built for a *mutating* catalog: only the request's own candidate
    views contribute their cardinality estimates, so a maintenance
    delta on view V changes the keys of exactly the groups that use V —
    groups pinned to other views keep their fingerprints and stay hot.
    Planner interchangeability still holds (the key only segments the
    batch-service fingerprint further, never merges across it).
    """
    catalog = request.catalog
    views = request.effective_views()
    return (
        tuple(sorted(catalog.tables.items())) if catalog else (),
        tuple(
            (view_fingerprint(v),
             catalog.row_count(v.name) if catalog else None)
            for v in views
        ),
        request.use_set_semantics,
    )

"""Request execution with shared-memo warm start.

One :class:`PlannerCache` lives in every execution context — the daemon
master (serial mode) and each process worker — and implements the
reader side of the epoch protocol:

1. compute the request's serving fingerprint;
2. if a locally cached planner exists for that fingerprint *and* the
   tier's epoch (one cheap shared-memory header read) is unchanged since
   it was validated, reuse it — the hot path costs no payload read;
3. otherwise look the fingerprint up in the shared tier: present means
   build a planner and warm it with :meth:`import_memo` (the entry
   cannot be stale — invalidation removes entries, it never leaves old
   bytes findable); absent means plan cold;
4. run the request through the registered strategy (the shared
   :func:`repro.service.executor.execute_request` by default, so the
   batch service's determinism rules — count-budgeted requests always
   plan cold — hold verbatim in the daemon);
5. hand the planner's memo export back to the caller. Workers never
   write the tier: the daemon master is the single writer and publishes
   exports after each response.

Requests that pin an explicit view subset run against a restricted
catalog clone so the engine's shared-planner fast path (and therefore
the warm memo) applies to them too; their fingerprints then respond to
invalidation independently of full-catalog traffic.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import replace
from typing import Optional

from ..catalog.schema import Catalog
from ..core.planner import RewritePlanner
from ..obs.metrics import current_metrics
from ..service.executor import build_engine
from ..service.requests import RewriteRequest, RewriteResponse
from .memo import MEMO_EXPORT_MAX, SharedMemoTier
from .protocol import resolve_strategy, serving_group_key

#: Planner paths, as reported by repro_serving_planner_path_total.
WARM_LOCAL = "warm_local"
WARM_SHARED = "warm_shared"
COLD = "cold"


def _observe_path(path: str) -> None:
    metrics = current_metrics()
    if metrics is not None:
        metrics.counter(
            "repro_serving_planner_path_total",
            "How requests obtained their planner: locally cached, "
            "warm-started from the shared memo tier, or cold.",
            ("path",),
        ).labels(path).inc()


def _restricted_catalog(catalog: Catalog, views) -> Catalog:
    """A clone of ``catalog`` registering only ``views``."""
    clone = Catalog(list(catalog.tables.values()))
    for view in views:
        clone.add_view(view, row_count=catalog.row_count(view.name))
    return clone


class PlannerCache:
    """Per-process planners, validated against the memo tier's epoch."""

    #: Distinct fingerprints kept warm per process.
    MAX_PLANNERS = 8

    def __init__(self, tier):
        self.tier = tier
        #: fingerprint -> (validated_epoch, planner)
        self._planners: OrderedDict[tuple, tuple[int, RewritePlanner]] = (
            OrderedDict()
        )

    def run(
        self,
        request: RewriteRequest,
        strategy: Optional[str] = None,
    ) -> tuple[RewriteResponse, tuple, tuple[str, ...], list, str]:
        """Execute one request; returns
        ``(response, fingerprint, view_names, memo_export, path)``.

        ``memo_export`` is the planner's post-request substitution memo
        for the daemon master to publish (single-writer discipline);
        ``path`` reports how the planner was obtained.
        """
        key = serving_group_key(request)
        views = request.effective_views()
        view_names = tuple(v.name for v in views)

        if request.views is not None and request.catalog is not None:
            if set(view_names) != set(request.catalog.views):
                request = replace(
                    request,
                    catalog=_restricted_catalog(request.catalog, views),
                    views=None,
                )
            else:
                request = replace(request, views=None)

        planner, path = self._planner_for(key, views, request)
        engine = (
            build_engine(
                request.catalog, request.use_set_semantics, planner
            )
            if request.catalog is not None
            else None
        )
        runner = resolve_strategy(strategy)
        response = runner(request, engine=engine, planner=planner)
        export = planner.export_memos(MEMO_EXPORT_MAX)
        _observe_path(path)
        return response, key, view_names, export, path

    def _planner_for(
        self, key: tuple, views, request: RewriteRequest
    ) -> tuple[RewritePlanner, str]:
        epoch = self.tier.epoch()
        cached = self._planners.get(key)
        if cached is not None and cached[0] == epoch:
            self._planners.move_to_end(key)
            return cached[1], WARM_LOCAL
        # Epoch moved (or first sight): revalidate against the tier.
        self._planners.pop(key, None)
        planner = RewritePlanner(
            list(views), request.catalog, request.use_set_semantics
        )
        entry = self.tier.lookup(key)
        if entry is not None:
            planner.import_memos(entry.memo)
            path = WARM_SHARED
        else:
            path = COLD
        self._planners[key] = (epoch, planner)
        while len(self._planners) > self.MAX_PLANNERS:
            self._planners.popitem(last=False)
        return planner, path


# ----------------------------------------------------------------------
# Process-pool entry points (module-level, picklable by reference)

_WORKER_TIER = None
_WORKER_CACHE: Optional[PlannerCache] = None


def init_worker(memo_name: Optional[str]) -> None:
    """ProcessPoolExecutor initializer: attach the shared tier once."""
    global _WORKER_TIER, _WORKER_CACHE
    if memo_name is not None:
        _WORKER_TIER = SharedMemoTier.attach(memo_name)
    else:
        from .memo import LocalMemoTier

        # No shared segment (local-tier daemon): workers plan cold but
        # stay correct — every epoch read is 0 and every lookup misses.
        _WORKER_TIER = LocalMemoTier()
    _WORKER_CACHE = PlannerCache(_WORKER_TIER)


def run_in_worker(payload: tuple):
    """One request in a pool worker; returns the PlannerCache.run tuple.

    ``payload`` is ``(request, strategy)``. The response, fingerprint,
    view names, memo export and planner path travel back pickled; the
    master publishes the export into the shared tier.
    """
    request, strategy = payload
    assert _WORKER_CACHE is not None, "init_worker did not run"
    return _WORKER_CACHE.run(request, strategy)

"""The always-on asyncio rewriting daemon.

A stdlib-``asyncio`` JSONL-over-socket server (TCP and/or Unix-domain)
speaking the versioned ``repro-api/1`` envelope. One daemon serves one
catalog; the request path is::

    line -> parse -> admission -> executor queue -> PlannerCache.run
         -> publish memo export -> envelope line back

Admission happens synchronously on the event loop when a line arrives,
so overload never buffers unboundedly: past the queue limit (or a
tenant's quota) the client gets an immediate in-band *refused* response
— the same degraded shape as the batch service's ``batch_deadline``
path, trip-labelled ``queue_full`` / ``tenant_quota``. Connections are
never dropped on overload.

Execution backends:

``workers=0`` (serial)
    one worker thread; planners and the memo tier live in-process. The
    determinism/debugging baseline.
``workers=N``
    a ``ProcessPoolExecutor``; workers attach the shared-memory memo
    tier read-only and warm-start planners from it. The master is the
    tier's single writer: memo exports ride back with each response and
    are published here.

The ``update`` op mutates base tables through :mod:`repro.maintenance`.
A registered delta listener — not the op handler — performs the cache
invalidation, so *any* maintenance activity against the daemon's
database (including direct ``apply_change`` calls in embedding code)
bumps the shared tier's epoch and evicts the affected fingerprints.
Affected views also get their catalog cardinality refreshed from the
maintained materialization, so post-update responses re-rank with live
statistics — without a restart and without cold-starting unaffected
fingerprints.
"""

from __future__ import annotations

import asyncio
import functools
import json
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Optional

from ..catalog.schema import Catalog
from ..engine.database import Database
from ..errors import UnsupportedSQLError
from ..maintenance import MaintainedView, apply_change, register_delta_listener
from ..obs.metrics import METRICS_SCHEMA, MetricsRegistry, current_metrics
from ..service.degradation import refused_response
from .admission import DEFAULT_TENANT, AdmissionController, TenantQuota
from .memo import DEFAULT_CAPACITY, create_memo_tier
from .protocol import (
    ProtocolError,
    parse_line,
    request_from_wire,
    resolve_strategy,
    strategy_names,
)
from .worker import PlannerCache, init_worker, run_in_worker


def _envelope(*args, **kwargs) -> dict:
    from .. import api

    return api.to_envelope(*args, **kwargs)


class RewriteDaemon:
    """One catalog, one shared memo tier, many concurrent clients."""

    def __init__(
        self,
        catalog: Catalog,
        *,
        database: Optional[Database] = None,
        workers: int = 0,
        queue_limit: int = 64,
        default_quota: Optional[TenantQuota] = None,
        tenant_quotas: Optional[dict[str, TenantQuota]] = None,
        memo_capacity: int = DEFAULT_CAPACITY,
        memo_tier=None,
        metrics: Optional[MetricsRegistry] = None,
        metrics_interval: float = 0.0,
    ):
        self.catalog = catalog
        self.database = database or Database(catalog)
        self.workers = max(0, workers)
        self.admission = AdmissionController(
            queue_limit=queue_limit,
            default_quota=default_quota,
            tenant_quotas=tenant_quotas,
        )
        self.metrics = metrics
        self.metrics_interval = metrics_interval
        # Process workers need a real shared segment; serial mode is
        # happy with whatever the platform offers.
        self.memo = memo_tier or create_memo_tier(
            capacity=memo_capacity, shared=True
        )
        self._planner_cache = PlannerCache(self.memo)
        if self.workers > 0:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=init_worker,
                initargs=(self.memo.name,),
            )
        else:
            # One worker thread: requests run strictly serially (the
            # planner-sharing determinism baseline) while the event loop
            # keeps accepting, refusing and answering pings.
            self._pool = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-serve"
            )
        #: view name -> maintainer, built lazily on the first update of a
        #: table the view reads. Unmaintainable views (DISTINCT, views
        #: over views) stay out and are handled by invalidation alone.
        self._maintainers: dict[str, MaintainedView] = {}
        self._update_lock = asyncio.Lock()
        self._unsubscribe = register_delta_listener(self._on_delta)
        self._servers: list[asyncio.base_events.Server] = []
        self._connections: set[asyncio.Task] = set()
        self._stopping: Optional[asyncio.Event] = None
        self._started = time.monotonic()
        self._frame_seq = 0
        self.addresses: list[tuple] = []

    # ------------------------------------------------------------------
    # Lifecycle

    async def start(
        self,
        host: Optional[str] = None,
        port: int = 0,
        unix_path: Optional[str] = None,
    ) -> None:
        """Bind the requested sockets; TCP port 0 picks a free port."""
        self._loop = asyncio.get_running_loop()
        self._stopping = asyncio.Event()
        if host is None and unix_path is None:
            host = "127.0.0.1"
        if host is not None:
            server = await asyncio.start_server(
                self._handle_connection, host=host, port=port
            )
            self._servers.append(server)
            for sock in server.sockets:
                self.addresses.append(
                    ("tcp",) + sock.getsockname()[:2]
                )
        if unix_path is not None:
            server = await asyncio.start_unix_server(
                self._handle_connection, path=unix_path
            )
            self._servers.append(server)
            self.addresses.append(("unix", unix_path))

    @property
    def tcp_port(self) -> Optional[int]:
        for kind, *rest in self.addresses:
            if kind == "tcp":
                return rest[1]
        return None

    async def serve_forever(self) -> None:
        """Serve until :meth:`stop` (or an in-band shutdown op)."""
        assert self._stopping is not None, "call start() first"
        frames = None
        if self.metrics_interval > 0 and self.metrics is not None:
            frames = asyncio.ensure_future(self._emit_frames())
        try:
            await self._stopping.wait()
        finally:
            if frames is not None:
                frames.cancel()
            await self._shutdown()

    def stop(self) -> None:
        """Request shutdown; safe to call from any thread."""
        if self._stopping is None:
            return
        loop = getattr(self, "_loop", None)
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(self._stopping.set)
        else:
            self._stopping.set()

    async def _shutdown(self) -> None:
        for server in self._servers:
            server.close()
        for server in self._servers:
            await server.wait_closed()
        self._servers.clear()
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(
                *self._connections, return_exceptions=True
            )
        self._unsubscribe()
        self._pool.shutdown(wait=True, cancel_futures=True)
        self.memo.close()
        self.memo.unlink()

    async def _emit_frames(self) -> None:
        """Periodic ``repro-metrics/1`` frames on stdout (serve-sql's
        in-band frame shape, one JSON object per line)."""
        while True:
            await asyncio.sleep(self.metrics_interval)
            self._frame_seq += 1
            print(
                json.dumps(
                    {
                        "schema": METRICS_SCHEMA,
                        "kind": "metrics-frame",
                        "seq": self._frame_seq,
                        "elapsed": round(
                            time.monotonic() - self._started, 3
                        ),
                        "metrics": self.metrics.snapshot().as_dict(),
                    }
                ),
                flush=True,
            )

    # ------------------------------------------------------------------
    # Connection handling

    async def _handle_connection(self, reader, writer) -> None:
        me = asyncio.current_task()
        if me is not None:
            self._connections.add(me)
            me.add_done_callback(self._connections.discard)
        write_lock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()
        try:
            line_no = 0
            while True:
                line = await reader.readline()
                if not line:
                    break
                line = line.strip()
                if not line or line.startswith(b"#"):
                    continue
                line_no += 1
                task = asyncio.ensure_future(
                    self._handle_line(
                        line.decode("utf-8", "replace"),
                        line_no,
                        writer,
                        write_lock,
                    )
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            pass  # daemon shutdown with the client still connected
        finally:
            if tasks:
                for task in tasks:
                    task.cancel()
                await asyncio.gather(*tasks, return_exceptions=True)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, OSError, asyncio.CancelledError):
                pass

    async def _write(self, writer, lock, doc: dict) -> None:
        payload = (json.dumps(doc) + "\n").encode("utf-8")
        async with lock:
            writer.write(payload)
            try:
                await writer.drain()
            except (ConnectionResetError, OSError):
                pass

    async def _handle_line(
        self, line: str, line_no: int, writer, write_lock
    ) -> None:
        request_id = None
        try:
            obj = parse_line(line, line_no)
            request_id = obj.get("id")
            op = obj["op"]
            if op == "rewrite":
                doc = await self._op_rewrite(obj, line_no)
            elif op == "update":
                doc = await self._op_update(obj, line_no)
            elif op == "ping":
                doc = _envelope(
                    {
                        "pong": True,
                        "epoch": self.memo.epoch(),
                        "queue_depth": self.admission.depth,
                        "strategies": list(strategy_names()),
                    },
                    kind="ping",
                    request_id=request_id,
                )
            elif op == "metrics":
                snapshot = (
                    self.metrics.snapshot().as_dict()
                    if self.metrics is not None
                    else None
                )
                doc = _envelope(
                    {"metrics": snapshot},
                    kind="metrics",
                    request_id=request_id,
                )
            else:  # shutdown
                doc = _envelope(
                    {"stopping": True},
                    kind="shutdown",
                    request_id=request_id,
                )
                await self._write(writer, write_lock, doc)
                self.stop()
                return
        except asyncio.CancelledError:
            raise
        except Exception as error:  # noqa: BLE001 — a response line must
            # always come back; an unanswered request hangs the client.
            doc = _envelope(
                kind="error", error=error, request_id=request_id
            )
        await self._write(writer, write_lock, doc)

    # ------------------------------------------------------------------
    # Ops

    async def _op_rewrite(self, obj: dict, line_no: int) -> dict:
        request = request_from_wire(obj, self.catalog, line_no)
        strategy = obj.get("strategy")
        resolve_strategy(strategy)  # refuse unknown names up front
        tenant = str(obj.get("tenant") or DEFAULT_TENANT)

        reason = self.admission.admit(tenant)
        if reason is not None:
            self._count_request(tenant, "refused")
            return _envelope(
                refused_response(request, reason),
                kind="rewrite",
                request_id=request.request_id,
            )
        started = time.perf_counter()
        try:
            cap = self.admission.budget_cap(tenant)
            if cap is not None:
                tightened = (
                    cap
                    if request.budget is None
                    else request.budget.merged_with(cap)
                )
                from dataclasses import replace as _replace

                request = _replace(request, budget=tightened)
            loop = asyncio.get_event_loop()
            if self.workers > 0:
                result = await loop.run_in_executor(
                    self._pool,
                    run_in_worker,
                    (request, strategy),
                )
            else:
                result = await loop.run_in_executor(
                    self._pool,
                    functools.partial(
                        self._run_serial, request, strategy
                    ),
                )
            response, key, view_names, export, _path = result
            if export:
                # Single-writer discipline: only this (master) process
                # publishes into the shared tier.
                self.memo.publish(key, view_names, export)
            outcome = (
                "error"
                if response.error is not None
                else "exhausted" if response.exhausted else "ok"
            )
            self._count_request(
                tenant, outcome, time.perf_counter() - started
            )
            return _envelope(
                response, kind="rewrite", request_id=request.request_id
            )
        finally:
            self.admission.release(tenant)

    def _run_serial(self, request, strategy):
        return self._planner_cache.run(request, strategy)

    def _count_request(
        self, tenant: str, outcome: str, seconds: Optional[float] = None
    ) -> None:
        metrics = self.metrics or current_metrics()
        if metrics is None:
            return
        metrics.counter(
            "repro_serving_requests_total",
            "Daemon rewrite requests, by tenant and outcome.",
            ("tenant", "outcome"),
        ).labels(tenant, outcome).inc()
        if seconds is not None:
            metrics.histogram(
                "repro_serving_request_seconds",
                "Daemon rewrite latency, by tenant.",
                ("tenant",),
            ).labels(tenant).observe(seconds)

    async def _op_update(self, obj: dict, line_no: int) -> dict:
        table = obj.get("table")
        if not isinstance(table, str) or not self.catalog.is_table(table):
            raise ProtocolError(
                f"line {line_no}: 'table' must name a base table"
            )
        inserts = [tuple(r) for r in obj.get("insert", ())]
        deletes = [tuple(r) for r in obj.get("delete", ())]
        async with self._update_lock:
            loop = asyncio.get_event_loop()
            summary = await loop.run_in_executor(
                None,
                functools.partial(
                    self.apply_update, table, inserts, deletes
                ),
            )
        return _envelope(
            summary, kind="update", request_id=obj.get("id")
        )

    def apply_update(
        self, table: str, inserts=(), deletes=()
    ) -> dict:
        """One base-table change: maintain views, refresh stats.

        Invalidation itself happens in the delta listener, so it also
        covers maintenance driven from outside this method.
        """
        epoch_before = self.memo.epoch()
        maintainers = self._maintainers_reading(table)
        apply_change(
            list(maintainers.values()),
            table,
            inserts,
            deletes,
            database=self.database,
        )
        unmaintained = [
            name
            for name, view in self.catalog.views.items()
            if name not in maintainers
            and any(rel.name == table for rel in view.block.from_)
        ]
        if unmaintained:
            # No maintainer to observe the delta -> no listener fired;
            # still stale, so invalidate them here.
            self.memo.invalidate_views(unmaintained)
        return {
            "table": table,
            "inserted": len(list(inserts)),
            "deleted": len(list(deletes)),
            "maintained_views": sorted(maintainers),
            "invalidated_views": sorted(
                set(maintainers) | set(unmaintained)
            ),
            "epoch": self.memo.epoch(),
            "epoch_before": epoch_before,
        }

    def _maintainers_reading(self, table: str) -> dict[str, MaintainedView]:
        out = {}
        for name, view in self.catalog.views.items():
            if not any(rel.name == table for rel in view.block.from_):
                continue
            maintainer = self._maintainers.get(name)
            if maintainer is None:
                try:
                    maintainer = MaintainedView(view, self.database)
                except UnsupportedSQLError:
                    continue
                self._maintainers[name] = maintainer
            out[name] = maintainer
        return out

    def _on_delta(self, event) -> None:
        """The maintenance hook: refresh stats, evict, bump the epoch."""
        if not event.relevant:
            return
        if event.maintainer.db is not self.database:
            return  # someone else's warehouse
        name = event.view_name
        if name in self.catalog.views:
            self.catalog.set_row_count(
                name, len(event.maintainer.table())
            )
        self.memo.invalidate_views([name])

"""The cross-worker shared memo tier of the serving daemon.

The planner's substitution memo is a pure function of the (views,
catalog schemas, semantics) fingerprint, and exporting/importing it
(:meth:`repro.core.planner.RewritePlanner.export_memo`) is how the batch
service warm-starts workers. The serving daemon keeps those exports
*persistent across requests* and *shared across process workers* in one
``multiprocessing.shared_memory`` segment:

single writer
    only the daemon master publishes; workers never write. This removes
    every write/write race by construction.

seqlock framing
    the segment starts with a fixed header ``(magic, generation, epoch,
    payload_len)``. The writer increments ``generation`` to an odd value
    before touching the payload and to the next even value after; a
    reader retries whenever it sees an odd generation or the generation
    changed under it. Readers therefore never observe a torn payload,
    and the common case (no concurrent publish) costs one extra header
    read.

epoch stamping
    ``epoch`` increments on every invalidation. Workers cache planners
    locally keyed by fingerprint and remember the epoch they validated
    against; a cheap header read tells them whether revalidation (a full
    payload lookup) is needed. An entry evicted by invalidation simply
    stops being found — the reader falls back to cold planning, never to
    a stale memo.

The payload is one pickled dict ``{fingerprint: MemoEntry}``. The writer
keeps the authoritative dict in process memory and rewrites the whole
payload on publish; capacity overflow evicts oldest-published entries
first. When ``multiprocessing.shared_memory`` is unavailable (or
creation fails, e.g. no ``/dev/shm``), :class:`LocalMemoTier` provides
the same interface over a process-local dict so serial serving and the
test-suite keep working everywhere.
"""

from __future__ import annotations

import pickle
import struct
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from ..obs.metrics import current_metrics

#: Header: magic, generation (odd = publish in progress), epoch,
#: payload byte length.
_HEADER = struct.Struct("<QQQQ")
_MAGIC = 0x5250_4D31  # "RPM1"

#: Default segment capacity. Memo entries are small (a few KB each for
#: the random workloads); 4 MiB holds thousands.
DEFAULT_CAPACITY = 4 * 1024 * 1024

#: Cap on memo entries exported per fingerprint on publish, mirroring
#: the batch service's MEMO_EXPORT_MAX discipline.
MEMO_EXPORT_MAX = 2048


@dataclass(frozen=True)
class MemoEntry:
    """One fingerprint's published planner memo.

    ``epoch`` is the tier epoch at publish time (diagnostics only — the
    validity signal is *presence*: invalidation removes the entry).
    ``view_names`` is what invalidation matches against.
    """

    epoch: int
    view_names: tuple[str, ...]
    memo: list = field(default_factory=list)


def _observe_lookup(outcome: str) -> None:
    metrics = current_metrics()
    if metrics is not None:
        metrics.counter(
            "repro_serving_shared_memo_lookups_total",
            "Shared memo tier lookups, by outcome.",
            ("outcome",),
        ).labels(outcome).inc()


def _observe_eviction(reason: str, count: int) -> None:
    if count <= 0:
        return
    metrics = current_metrics()
    if metrics is not None:
        metrics.counter(
            "repro_serving_shared_memo_evictions_total",
            "Entries evicted from the shared memo tier, by reason.",
            ("reason",),
        ).labels(reason).inc(count)


def _observe_size(entries: int, epoch: int) -> None:
    metrics = current_metrics()
    if metrics is not None:
        metrics.gauge(
            "repro_serving_shared_memo_entries",
            "Entries currently published in the shared memo tier.",
        ).set(entries)
        metrics.gauge(
            "repro_serving_epoch",
            "Current invalidation epoch of the shared memo tier.",
        ).set(epoch)


class LocalMemoTier:
    """The memo tier without shared memory: one process, same protocol.

    Serial daemons (``workers=0``) and tests use this; the interface —
    ``epoch()``, ``lookup()``, ``publish()``, ``invalidate_views()`` —
    is identical to :class:`SharedMemoTier`, so the worker-side planner
    cache logic is tier-agnostic.
    """

    #: Shared-memory tiers have a name workers attach by; local ones
    #: don't, and the daemon skips shipping one to workers.
    name: Optional[str] = None

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        self.capacity = capacity
        self._entries: OrderedDict[tuple, MemoEntry] = OrderedDict()
        self._epoch = 0

    def epoch(self) -> int:
        return self._epoch

    def __len__(self) -> int:
        return len(self._entries)

    def keys(self):
        return list(self._entries.keys())

    def lookup(self, key: tuple) -> Optional[MemoEntry]:
        entry = self._entries.get(key)
        _observe_lookup("hit" if entry is not None else "miss")
        return entry

    def publish(
        self, key: tuple, view_names: Sequence[str], memo: Iterable
    ) -> MemoEntry:
        entry = MemoEntry(
            epoch=self._epoch,
            view_names=tuple(view_names),
            memo=list(memo)[-MEMO_EXPORT_MAX:],
        )
        self._entries[key] = entry
        self._entries.move_to_end(key)
        self._enforce_capacity()
        self._flush()
        _observe_size(len(self._entries), self._epoch)
        return entry

    def invalidate_views(self, names: Iterable[str]) -> int:
        """Evict every entry touching ``names``; always bump the epoch.

        The epoch bumps even when nothing was evicted: readers with
        locally cached planners for a key published under the old epoch
        must revalidate regardless (their entry may have been evicted by
        an earlier invalidation they never observed).
        """
        targets = set(names)
        victims = [
            key
            for key, entry in self._entries.items()
            if targets.intersection(entry.view_names)
        ]
        for key in victims:
            del self._entries[key]
        self._epoch += 1
        self._flush()
        _observe_eviction("invalidation", len(victims))
        _observe_size(len(self._entries), self._epoch)
        return len(victims)

    def clear(self) -> None:
        self._entries.clear()
        self._epoch += 1
        self._flush()

    def close(self) -> None:  # interface parity with SharedMemoTier
        pass

    def unlink(self) -> None:
        pass

    # ------------------------------------------------------------------

    def _enforce_capacity(self) -> None:
        evicted = 0
        while (
            len(self._entries) > 1
            and self._payload_size() > self.capacity
        ):
            self._entries.popitem(last=False)
            evicted += 1
        _observe_eviction("capacity", evicted)

    def _payload_size(self) -> int:
        return len(pickle.dumps(self._entries, pickle.HIGHEST_PROTOCOL))

    def _flush(self) -> None:  # shared-memory subclass hook
        pass


class SharedMemoTier(LocalMemoTier):
    """The memo tier over one ``multiprocessing.shared_memory`` segment.

    Construct with ``create=True`` in the daemon master (the single
    writer); workers attach read-only via :meth:`attach`. The writer
    keeps the authoritative entry dict in process memory, so publishes
    are a serialize-and-frame of known state, never a read-modify-write
    of the segment.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        name: Optional[str] = None,
    ):
        from multiprocessing import shared_memory

        super().__init__(capacity)
        self._shm = shared_memory.SharedMemory(
            name=name, create=True, size=_HEADER.size + capacity
        )
        self.name = self._shm.name
        self._generation = 0
        self._writer = True
        self._flush()

    @classmethod
    def attach(cls, name: str) -> "SharedMemoTier":
        """A read-only view of an existing segment (worker side)."""
        from multiprocessing import shared_memory

        tier = cls.__new__(cls)
        LocalMemoTier.__init__(tier)
        try:
            # track=False (3.13+) keeps the worker's resource tracker
            # from unlinking the master's segment at worker exit.
            shm = shared_memory.SharedMemory(name=name, track=False)
        except TypeError:
            import multiprocessing

            shm = shared_memory.SharedMemory(name=name)
            # Pre-3.13 there is no track=False. Under the spawn start
            # method each worker runs its own resource tracker, which
            # would unlink the master's live segment at worker exit —
            # unregister to stop that. Under fork(server) the tracker
            # process is shared and its cache is a set: the attach
            # register above was a no-op, and unregistering here would
            # strip the *master's* registration (tracker KeyError noise
            # at exit), so leave it alone.
            if multiprocessing.get_start_method(allow_none=True) == "spawn":
                try:
                    from multiprocessing import resource_tracker

                    resource_tracker.unregister(
                        getattr(shm, "_name", "/" + name), "shared_memory"
                    )
                except Exception:
                    pass
        tier._shm = shm
        tier.name = name
        tier._generation = 0
        tier._writer = False
        tier.capacity = shm.size - _HEADER.size
        return tier

    # Reader protocol ---------------------------------------------------

    def _read_header(self) -> tuple[int, int, int, int]:
        return _HEADER.unpack_from(self._shm.buf, 0)

    def epoch(self) -> int:
        if self._writer:
            return self._epoch
        magic, _gen, epoch, _length = self._read_header()
        return epoch if magic == _MAGIC else 0

    def _read_entries(self) -> tuple[dict, int]:
        """A consistent (entries, epoch) snapshot via the seqlock."""
        for _attempt in range(1000):
            magic, gen1, epoch, length = self._read_header()
            if magic != _MAGIC or gen1 % 2 == 1:
                continue
            raw = bytes(
                self._shm.buf[_HEADER.size:_HEADER.size + length]
            )
            _magic, gen2, _epoch, _length = self._read_header()
            if gen1 == gen2:
                try:
                    return pickle.loads(raw) if length else {}, epoch
                except Exception:
                    continue  # torn write slipped through; retry
        return {}, self.epoch()  # writer wedged mid-publish: act cold

    def lookup(self, key: tuple) -> Optional[MemoEntry]:
        if self._writer:
            return super().lookup(key)
        entries, _epoch = self._read_entries()
        entry = entries.get(key)
        _observe_lookup("hit" if entry is not None else "miss")
        return entry

    def __len__(self) -> int:
        if self._writer:
            return len(self._entries)
        entries, _epoch = self._read_entries()
        return len(entries)

    def keys(self):
        if self._writer:
            return list(self._entries.keys())
        entries, _epoch = self._read_entries()
        return list(entries.keys())

    # Writer protocol ---------------------------------------------------

    def _flush(self) -> None:
        if not getattr(self, "_writer", False):
            raise RuntimeError("read-only attachment cannot publish")
        payload = pickle.dumps(self._entries, pickle.HIGHEST_PROTOCOL)
        while len(payload) > self.capacity and len(self._entries) > 0:
            # Oversized even after _enforce_capacity (single huge entry):
            # drop oldest until it frames, an empty tier being valid.
            self._entries.popitem(last=False)
            _observe_eviction("capacity", 1)
            payload = pickle.dumps(self._entries, pickle.HIGHEST_PROTOCOL)
        # Seqlock: odd generation while the payload is inconsistent.
        self._generation += 1
        _HEADER.pack_into(
            self._shm.buf, 0,
            _MAGIC, self._generation, self._epoch, 0,
        )
        self._shm.buf[_HEADER.size:_HEADER.size + len(payload)] = payload
        self._generation += 1
        _HEADER.pack_into(
            self._shm.buf, 0,
            _MAGIC, self._generation, self._epoch, len(payload),
        )

    def _payload_size(self) -> int:
        return len(pickle.dumps(self._entries, pickle.HIGHEST_PROTOCOL))

    # Lifecycle ---------------------------------------------------------

    def close(self) -> None:
        try:
            self._shm.close()
        except Exception:
            pass

    def unlink(self) -> None:
        if self._writer:
            try:
                self._shm.unlink()
            except Exception:
                pass


def create_memo_tier(
    capacity: int = DEFAULT_CAPACITY, shared: bool = True
):
    """The best available tier: shared memory, or a local fallback."""
    if shared:
        try:
            return SharedMemoTier(capacity=capacity)
        except Exception:
            pass  # no /dev/shm, permissions, platform — degrade local
    return LocalMemoTier(capacity=capacity)

"""Admission control: bounded queue + per-tenant budget quotas.

The daemon never drops a connection and never blocks the event loop on
a full backlog. Admission is decided synchronously when a request line
arrives; a request that cannot be queued gets an in-band *refused*
response — the same degraded shape as the batch service's
``batch_deadline`` path, with the trip label naming the reason:

``queue_full``
    the daemon-wide in-flight bound is reached. The bound covers every
    admitted-but-unfinished request, i.e. the executor queue plus the
    running ones.

``tenant_quota``
    the requesting tenant is at its own in-flight cap. Tenants are named
    by the ``tenant`` field on the wire; absent means the shared
    ``"default"`` tenant.

Quotas also carry a *budget cap*: a per-tenant ceiling on search
deadline that tightens (never loosens) whatever budget the request
asked for, via the same :meth:`SearchBudget.merged_with` discipline the
batch deadline overlay uses. A tenant can therefore be bounded both in
concurrency and in per-request search effort.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Optional

from ..obs.budget import SearchBudget
from ..obs.metrics import current_metrics

#: Trip labels for refused responses (mirrors BATCH_DEADLINE).
QUEUE_FULL = "queue_full"
TENANT_QUOTA = "tenant_quota"

#: Tenant name used when a request does not declare one.
DEFAULT_TENANT = "default"


@dataclass(frozen=True)
class TenantQuota:
    """One tenant's admission and budget ceiling.

    ``max_inflight`` bounds concurrent admitted requests; ``None`` means
    only the daemon-wide queue bound applies. ``deadline_ms_cap`` caps
    the search deadline of every request the tenant submits.
    """

    max_inflight: Optional[int] = None
    deadline_ms_cap: Optional[float] = None

    def budget_cap(self) -> Optional[SearchBudget]:
        if self.deadline_ms_cap is None:
            return None
        return SearchBudget(deadline=self.deadline_ms_cap / 1000.0)


class AdmissionController:
    """Decide, count and meter what enters the daemon's request queue."""

    def __init__(
        self,
        queue_limit: int = 64,
        default_quota: Optional[TenantQuota] = None,
        tenant_quotas: Optional[dict[str, TenantQuota]] = None,
    ):
        self.queue_limit = queue_limit
        self.default_quota = default_quota or TenantQuota()
        self.tenant_quotas = dict(tenant_quotas or {})
        self._lock = threading.Lock()
        self._inflight = 0
        self._per_tenant: dict[str, int] = {}

    @property
    def depth(self) -> int:
        """Admitted-but-unfinished requests (the queue depth gauge)."""
        return self._inflight

    def quota_for(self, tenant: str) -> TenantQuota:
        return self.tenant_quotas.get(tenant, self.default_quota)

    def budget_cap(self, tenant: str) -> Optional[SearchBudget]:
        return self.quota_for(tenant).budget_cap()

    def admit(self, tenant: str = DEFAULT_TENANT) -> Optional[str]:
        """Admit or refuse; returns the refusal trip label, or ``None``.

        On ``None`` the request is counted in-flight and the caller MUST
        pair it with exactly one :meth:`release`.
        """
        quota = self.quota_for(tenant)
        with self._lock:
            if self._inflight >= self.queue_limit:
                outcome = QUEUE_FULL
            elif (
                quota.max_inflight is not None
                and self._per_tenant.get(tenant, 0) >= quota.max_inflight
            ):
                outcome = TENANT_QUOTA
            else:
                outcome = None
                self._inflight += 1
                self._per_tenant[tenant] = (
                    self._per_tenant.get(tenant, 0) + 1
                )
            depth = self._inflight
        self._observe(outcome, depth)
        return outcome

    def release(self, tenant: str = DEFAULT_TENANT) -> None:
        with self._lock:
            self._inflight = max(0, self._inflight - 1)
            remaining = self._per_tenant.get(tenant, 0) - 1
            if remaining > 0:
                self._per_tenant[tenant] = remaining
            else:
                self._per_tenant.pop(tenant, None)
            depth = self._inflight
        metrics = current_metrics()
        if metrics is not None:
            metrics.gauge(
                "repro_serving_queue_depth",
                "Admitted-but-unfinished requests in the daemon.",
            ).set(depth)

    def _observe(self, outcome: Optional[str], depth: int) -> None:
        metrics = current_metrics()
        if metrics is None:
            return
        metrics.counter(
            "repro_serving_admission_total",
            "Admission decisions, by outcome.",
            ("outcome",),
        ).labels(outcome or "admitted").inc()
        metrics.gauge(
            "repro_serving_queue_depth",
            "Admitted-but-unfinished requests in the daemon.",
        ).set(depth)

"""A synchronous client for the serving daemon.

Blocking sockets and plain JSONL — no asyncio on the client side, so it
works from scripts, notebooks and tests alike. Obtain one through
:func:`repro.api.connect`::

    with repro.api.connect(("127.0.0.1", 7411)) as client:
        doc = client.rewrite("SELECT ...", tenant="dash")
        assert doc["ok"] and doc["schema"] == "repro-api/1"

Every method returns the daemon's envelope verbatim (a dict); requests
are tagged with auto-incrementing ids and responses are matched back by
id, so one client may interleave calls from several threads.
"""

from __future__ import annotations

import itertools
import json
import socket
import threading
from typing import Optional, Union

from ..errors import ReproError

Address = Union[str, tuple]


class ServingClientError(ReproError):
    """The daemon hung up or spoke something that is not JSONL."""


def parse_address(address: Address) -> tuple[int, Address]:
    """``address`` -> ``(socket family, connect argument)``.

    Accepts ``(host, port)`` tuples, ``"host:port"``,
    ``"tcp://host:port"`` and ``"unix:///path/to.sock"``.
    """
    if isinstance(address, tuple):
        return socket.AF_INET, (address[0], int(address[1]))
    if not isinstance(address, str):
        raise ServingClientError(f"unsupported address {address!r}")
    if address.startswith("unix://"):
        return socket.AF_UNIX, address[len("unix://"):]
    if address.startswith("tcp://"):
        address = address[len("tcp://"):]
    host, sep, port = address.rpartition(":")
    if not sep:
        raise ServingClientError(
            f"address {address!r} needs a port (host:port) or a "
            "unix:// prefix"
        )
    return socket.AF_INET, (host or "127.0.0.1", int(port))


class ServingClient:
    """One connection to a daemon; thread-safe, context-managed."""

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._reader = sock.makefile("r", encoding="utf-8")
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        #: responses read while waiting for a different id
        self._pending: dict[str, dict] = {}

    @classmethod
    def connect(
        cls, address: Address, timeout: Optional[float] = 10.0
    ) -> "ServingClient":
        family, target = parse_address(address)
        sock = socket.socket(family, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        try:
            sock.connect(target)
        except OSError:
            sock.close()
            raise
        return cls(sock)

    # ------------------------------------------------------------------

    def request(self, obj: dict) -> dict:
        """Send one op object, wait for the envelope with its id."""
        obj = dict(obj)
        obj.setdefault("id", f"c{next(self._ids)}")
        wanted = str(obj["id"])
        with self._lock:
            self._sock.sendall(
                (json.dumps(obj) + "\n").encode("utf-8")
            )
            return self._read_until(wanted)

    def _read_until(self, wanted: str) -> dict:
        while True:
            if wanted in self._pending:
                return self._pending.pop(wanted)
            line = self._reader.readline()
            if not line:
                raise ServingClientError(
                    "daemon closed the connection mid-request"
                )
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError as error:
                raise ServingClientError(
                    f"daemon sent a non-JSON line: {line[:120]!r}"
                ) from error
            got = doc.get("id")
            if got is None or str(got) == wanted:
                return doc
            self._pending[str(got)] = doc

    # ------------------------------------------------------------------
    # Ops

    def rewrite(self, sql: str, **fields) -> dict:
        """``{"op": "rewrite", "sql": sql, **fields}`` — see
        :mod:`repro.serving.protocol` for the accepted fields
        (``tenant``, ``views``, ``strategy``, ``deadline_ms``, ...)."""
        return self.request({"op": "rewrite", "sql": sql, **fields})

    def update(
        self, table: str, insert=(), delete=(), **fields
    ) -> dict:
        return self.request(
            {
                "op": "update",
                "table": table,
                "insert": [list(r) for r in insert],
                "delete": [list(r) for r in delete],
                **fields,
            }
        )

    def ping(self) -> dict:
        return self.request({"op": "ping"})

    def metrics(self) -> dict:
        return self.request({"op": "metrics"})

    def shutdown(self) -> dict:
        return self.request({"op": "shutdown"})

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServingClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

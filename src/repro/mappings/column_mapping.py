"""Column mappings from a view to a query (paper Definition 2.1).

A column mapping φ sends every column of every table occurrence of V to
the corresponding column of a same-named table occurrence of Q; it is
*1-1* when distinct view occurrences map to distinct query occurrences
(the requirement of condition C1), and *many-to-1* otherwise (allowed
under set semantics, Section 5.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from ..blocks.exprs import Expr, substitute_expr
from ..blocks.query_block import QueryBlock, Relation
from ..blocks.terms import Column, Comparison


@dataclass(frozen=True)
class ColumnMapping:
    """φ from a view block's columns to a query block's columns.

    ``table_pairs[i] = (v, q)`` records that view FROM-occurrence ``v``
    maps onto query FROM-occurrence ``q``; the column map follows
    positionally (Definition 2.1 condition 2).
    """

    view: QueryBlock
    query: QueryBlock
    table_pairs: tuple[tuple[int, int], ...]

    @cached_property
    def column_map(self) -> dict[Column, Column]:
        out: dict[Column, Column] = {}
        for v_idx, q_idx in self.table_pairs:
            v_rel = self.view.from_[v_idx]
            q_rel = self.query.from_[q_idx]
            for v_col, q_col in zip(v_rel.columns, q_rel.columns):
                out[v_col] = q_col
        return out

    @cached_property
    def image_columns(self) -> frozenset[Column]:
        """``φ(Cols(V))``: query columns covered by the view."""
        return frozenset(self.column_map.values())

    @cached_property
    def image_table_indexes(self) -> frozenset[int]:
        """Indexes of the query FROM occurrences in ``φ(Tables(V))``."""
        return frozenset(q for _v, q in self.table_pairs)

    @property
    def is_one_to_one(self) -> bool:
        return len(self.image_table_indexes) == len(self.table_pairs)

    # ------------------------------------------------------------------

    def apply(self, column: Column) -> Column:
        """``φ(column)`` for a view column."""
        return self.column_map[column]

    def apply_expr(self, expr: Expr) -> Expr:
        return substitute_expr(expr, self.column_map)

    def apply_atom(self, atom: Comparison) -> Comparison:
        return Comparison(
            self.apply_expr(atom.left), atom.op, self.apply_expr(atom.right)
        )

    def apply_atoms(self, atoms) -> tuple[Comparison, ...]:
        return tuple(self.apply_atom(a) for a in atoms)

    @cached_property
    def inverse_map(self) -> dict[Column, Column]:
        """φ⁻¹ for 1-1 mappings (first preimage wins otherwise)."""
        out: dict[Column, Column] = {}
        for v_col, q_col in self.column_map.items():
            out.setdefault(q_col, v_col)
        return out

    def preimages(self, query_column: Column) -> tuple[Column, ...]:
        """All view columns mapping onto ``query_column``."""
        return tuple(
            v for v, q in self.column_map.items() if q == query_column
        )

    def image_relations(self) -> tuple[Relation, ...]:
        """The query FROM occurrences replaced by the view (in order)."""
        return tuple(
            self.query.from_[q] for q in sorted(self.image_table_indexes)
        )

    def describe(self) -> str:
        pairs = ", ".join(
            f"{v} -> {q}" for v, q in sorted(
                self.column_map.items(), key=lambda kv: kv[0].name
            )
        )
        return "{" + pairs + "}"

    def __str__(self) -> str:
        return self.describe()

"""Column mappings from views to queries (Definition 2.1)."""

from .column_mapping import ColumnMapping
from .enumerate_mappings import count_mappings, enumerate_mappings

__all__ = ["ColumnMapping", "count_mappings", "enumerate_mappings"]

"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type to handle any library failure.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SQLSyntaxError(ReproError):
    """The SQL text could not be tokenized or parsed.

    Carries the position of the offending token when available.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class UnsupportedSQLError(ReproError):
    """The SQL parsed, but uses a feature outside the paper's query class.

    The paper studies single-block SELECT-FROM-WHERE-GROUPBY-HAVING queries
    with conjunctions of comparison predicates and the aggregate functions
    MIN, MAX, SUM, COUNT and AVG.
    """


class SchemaError(ReproError):
    """A table, view or column reference could not be resolved."""


class NormalizationError(ReproError):
    """A parsed query violates SQL validity rules.

    For example, a SELECT column that is neither aggregated nor listed in
    GROUP BY.
    """


class EvaluationError(ReproError):
    """The multiset engine could not evaluate a query block."""


class OracleUnsupported(ReproError):
    """The independent SQL backend cannot execute this scenario.

    Raised by :mod:`repro.oracle` when the installed ``sqlite3`` lacks a
    feature the compiled SQL needs; cross-check callers treat it as a
    skip-with-reason, never as a mismatch.
    """


class RewriteError(ReproError):
    """A rewriting step failed an internal consistency check.

    This indicates a bug: condition checking should reject any view/mapping
    pair that the rewriting steps cannot handle.
    """

"""A semantic query-result cache built on the rewriter.

The paper's mobile-computing motivation (Section 1): "Locally cached
materialized views of the data, such as the results of previous queries,
may improve the performance of such applications." [Sel88, SJGP90, CR94]
cached results matched *syntactically*; the point of the paper is that the
usability conditions enable **semantic** matching — a cached result can
answer a query it doesn't textually contain.

:class:`QueryCache` remembers (query, result) pairs as materialized
views, answers later queries by rewriting them over the cached views
(never touching base tables), and evicts least-recently-used entries
under a row-count capacity.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Iterable, Optional, Union

from .blocks.normalize import as_block
from .blocks.query_block import QueryBlock, ViewDef
from .catalog.schema import Catalog
from .core.multiview import all_rewritings
from .core.planner import RewritePlanner
from .core.result import Rewriting
from .obs.budget import BudgetMeter, SearchBudget, ensure_meter
from .obs.metrics import current_metrics
from .engine.database import Database
from .engine.table import Table
from .errors import SchemaError


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    remembered: int = 0
    budget_exhausted: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        """An idempotent read: never mutates or resets the counters."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "remembered": self.remembered,
            "budget_exhausted": self.budget_exhausted,
            "hit_rate": round(self.hit_rate, 4),
        }

    def reset(self) -> None:
        """Zero all counters in place — the only sanctioned reset path.

        Stats reads (:meth:`as_dict`, the attributes) are idempotent;
        callers wanting a fresh window must reset explicitly, so derived
        gauges never go backwards behind a reader's back.
        """
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.remembered = 0
        self.budget_exhausted = 0


def _record_lookup(hit: bool) -> None:
    """One cache lookup into the active metrics registry, if any."""
    metrics = current_metrics()
    if metrics is not None:
        metrics.counter(
            "repro_cache_lookups_total",
            "Semantic query-cache lookups, by outcome.",
            ("outcome",),
        ).labels("hit" if hit else "miss").inc()


@dataclass
class CacheSnapshot:
    """A read-only, picklable view of a :class:`QueryCache`'s contents.

    The batch service ships one snapshot per worker so lookups run
    against a consistent cached-view set without sharing the live cache
    across processes. ``find_rewriting`` mirrors
    :meth:`QueryCache.find_rewriting` but never mutates LRU order;
    per-snapshot :class:`CacheStats` are merged back into the live cache
    with :meth:`QueryCache.merge_external`.
    """

    catalog: Catalog
    views: tuple[ViewDef, ...]
    use_set_semantics: bool = False
    budget: Optional[SearchBudget] = None

    def __post_init__(self):
        self._planner: Optional[RewritePlanner] = None
        self.stats = CacheStats()

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        # The planner rebuilds lazily per process; stats start at zero so
        # each worker reports only its own lookups.
        state["_planner"] = None
        state["stats"] = CacheStats()
        return state

    def find_rewriting(
        self,
        query: Union[str, QueryBlock],
        budget: Union[SearchBudget, BudgetMeter, None] = None,
    ) -> Optional[Rewriting]:
        """A rewriting of ``query`` over the snapshot's cached views."""
        meter = ensure_meter(budget if budget is not None else self.budget)
        block = as_block(query, self.catalog)
        if self._planner is None:
            self._planner = RewritePlanner(
                self.views,
                catalog=self.catalog,
                use_set_semantics=self.use_set_semantics,
            )
        candidates = all_rewritings(
            block,
            (),
            catalog=self.catalog,
            use_set_semantics=self.use_set_semantics,
            planner=self._planner,
            budget=meter,
        )
        if meter is not None and meter.exhausted:
            self.stats.budget_exhausted += 1
        cached = {view.name for view in self.views}
        for rewriting in candidates:
            names = {rel.name for rel in rewriting.query.from_}
            if names <= cached:
                self.stats.hits += 1
                _record_lookup(hit=True)
                return rewriting
        self.stats.misses += 1
        _record_lookup(hit=False)
        return None

    def reset_stats(self) -> None:
        """Start a fresh counting window for this snapshot."""
        self.stats.reset()


@dataclass
class _Entry:
    view: ViewDef
    table: Table

    @property
    def rows(self) -> int:
        return len(self.table)


class QueryCache:
    """Answers queries from the results of earlier queries.

    ``capacity_rows`` bounds the summed cardinality of cached results;
    exceeding it evicts least-recently-used entries. The cache owns a
    private catalog copy, so registrations and evictions never touch the
    caller's catalog.
    """

    def __init__(
        self,
        catalog: Catalog,
        capacity_rows: float = float("inf"),
        use_set_semantics: bool = False,
        budget: Optional[SearchBudget] = None,
    ):
        self.base_catalog = catalog
        self.capacity_rows = capacity_rows
        self.use_set_semantics = use_set_semantics
        # Default lookup budget: a spent budget is just a cache miss, so
        # heavy traffic can cap per-lookup rewrite latency without ever
        # getting a wrong (or missing) answer.
        self.budget = budget
        self._catalog = catalog.copy()
        self._entries: OrderedDict[str, _Entry] = OrderedDict()
        self._counter = 0
        self._size_rows = 0
        self._planner: Optional[RewritePlanner] = None
        self.stats = CacheStats()

    # ------------------------------------------------------------------

    def remember(
        self,
        query: Union[str, QueryBlock],
        result: Union[Table, Iterable],
        name: Optional[str] = None,
    ) -> ViewDef:
        """Cache a query's result; returns the registered view."""
        block = as_block(query, self.base_catalog)
        if name is None:
            self._counter += 1
            name = f"cached_{self._counter}"
        view = ViewDef(name, block)
        if isinstance(result, Table):
            table = Table(view.output_names, result.rows)
        else:
            table = Table(view.output_names, result)
        previous = self._entries.get(name)
        if previous is not None:
            self._catalog.remove_view(name)
            self._size_rows -= previous.rows
        self._catalog.add_view(view, row_count=len(table))
        self._entries[name] = _Entry(view, table)
        self._entries.move_to_end(name)
        self._size_rows += len(table)
        self._planner = None
        self.stats.remembered += 1
        metrics = current_metrics()
        if metrics is not None:
            metrics.counter(
                "repro_cache_remember_total",
                "Query results remembered by the semantic cache.",
            ).inc()
        self._evict_over_capacity(keep=name)
        self._update_gauges()
        return view

    def forget(self, name: str) -> None:
        """Drop one cached result."""
        if name not in self._entries:
            raise SchemaError(f"not cached: {name}")
        self._size_rows -= self._entries[name].rows
        del self._entries[name]
        self._catalog.remove_view(name)
        self._planner = None
        self._update_gauges()

    def _evict_over_capacity(self, keep: str) -> None:
        evicted = 0
        while self._size_rows > self.capacity_rows and len(self._entries) > 1:
            victim = next(
                (n for n in self._entries if n != keep), None
            )
            if victim is None:
                break
            self._size_rows -= self._entries[victim].rows
            del self._entries[victim]
            self._catalog.remove_view(victim)
            self._planner = None
            self.stats.evictions += 1
            evicted += 1
        if evicted:
            metrics = current_metrics()
            if metrics is not None:
                metrics.counter(
                    "repro_cache_evictions_total",
                    "LRU evictions forced by the row-capacity bound.",
                ).inc(evicted)

    def _update_gauges(self) -> None:
        """Mirror occupancy into the active registry after any mutation."""
        metrics = current_metrics()
        if metrics is not None:
            metrics.gauge(
                "repro_cache_size_rows",
                "Summed cardinality of all cached results.",
            ).set(self._size_rows)
            metrics.gauge(
                "repro_cache_entries",
                "Cached result tables currently held.",
            ).set(len(self._entries))

    # ------------------------------------------------------------------

    @property
    def size_rows(self) -> int:
        """Summed cardinality of all cached results.

        Maintained incrementally on remember/forget/evict — the eviction
        loop used to re-sum every entry per iteration (quadratic).
        """
        return self._size_rows

    @property
    def cached_names(self) -> list[str]:
        return list(self._entries)

    # ------------------------------------------------------------------

    def snapshot(self) -> CacheSnapshot:
        """A read-only, picklable view of the current cached-view set.

        The snapshot owns a catalog copy, so later remember/evict traffic
        on the live cache cannot race lookups running in pool workers.
        """
        return CacheSnapshot(
            catalog=self._catalog.copy(),
            views=tuple(entry.view for entry in self._entries.values()),
            use_set_semantics=self.use_set_semantics,
            budget=self.budget,
        )

    def merge_external(
        self,
        stats: Union[CacheStats, dict],
    ) -> None:
        """Fold lookup counters from a snapshot (or a worker's dict of
        them) into the live cache's stats, so batch traffic shows up in
        the same place as direct ``try_answer`` traffic."""
        if isinstance(stats, CacheStats):
            stats = stats.as_dict()
        self.stats.hits += stats.get("hits", 0)
        self.stats.misses += stats.get("misses", 0)
        self.stats.budget_exhausted += stats.get("budget_exhausted", 0)

    def reset_stats(self) -> None:
        """Explicitly zero the lookup/eviction counters.

        Reads never reset — ``stats.as_dict()`` can be polled by a gauge
        exporter without the numbers going backwards between polls.
        """
        self.stats.reset()

    # ------------------------------------------------------------------

    def find_rewriting(
        self,
        query: Union[str, QueryBlock],
        budget: Union[SearchBudget, BudgetMeter, None] = None,
    ) -> Optional[Rewriting]:
        """A rewriting of ``query`` whose FROM reads only cached views.

        ``budget`` (default: the cache's) bounds the search; a spent
        budget simply means fewer candidates were tried — the lookup
        degrades to a miss, never an error.
        """
        meter = ensure_meter(budget if budget is not None else self.budget)
        block = as_block(query, self._catalog)
        if self._planner is None:
            # Reused across lookups until the cached view set changes, so
            # heavy query traffic pays for the signature index once.
            self._planner = RewritePlanner(
                [entry.view for entry in self._entries.values()],
                catalog=self._catalog,
                use_set_semantics=self.use_set_semantics,
            )
        candidates = all_rewritings(
            block,
            (),
            catalog=self._catalog,
            use_set_semantics=self.use_set_semantics,
            planner=self._planner,
            budget=meter,
        )
        if meter is not None and meter.exhausted:
            self.stats.budget_exhausted += 1
        cached = set(self._entries)
        for rewriting in candidates:
            names = {rel.name for rel in rewriting.query.from_}
            if names <= cached:
                return rewriting
        return None

    def try_answer(
        self,
        query: Union[str, QueryBlock],
        budget: Union[SearchBudget, BudgetMeter, None] = None,
    ) -> Optional[Table]:
        """Answer from the cache, or None on a miss.

        A hit never reads base tables; the rewritten query runs against
        the cached result tables only. A tripped search budget degrades
        to a miss, so callers fall back to the original query.
        """
        rewriting = self.find_rewriting(query, budget=budget)
        if rewriting is None:
            self.stats.misses += 1
            _record_lookup(hit=False)
            return None
        db = Database(self._catalog)
        for name in rewriting.view_names:
            entry = self._entries[name]
            db._view_cache[name] = entry.table  # noqa: SLF001 - serving
            self._entries.move_to_end(name)     # LRU touch
        self.stats.hits += 1
        _record_lookup(hit=True)
        return db.execute(rewriting.query, extra_views=rewriting.extra_views())

    def answer(
        self,
        query: Union[str, QueryBlock],
        database: Database,
        remember_on_miss: bool = True,
        budget: Union[SearchBudget, BudgetMeter, None] = None,
    ) -> tuple[Table, bool]:
        """Answer from the cache, falling back to ``database``.

        Returns ``(result, hit)``. On a miss the fresh result is cached
        (when ``remember_on_miss``).
        """
        cached = self.try_answer(query, budget=budget)
        if cached is not None:
            return cached, True
        result = database.execute(as_block(query, self.base_catalog))
        if remember_on_miss:
            self.remember(query, result)
        return result, False

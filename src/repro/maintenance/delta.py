"""Delta evaluation: which core-table rows does a base change add/remove?

For a view whose FROM clause is ``T1, ..., Tn`` and a change ΔR to base
table R, the multiset of new core rows follows the telescoping product
rule: writing ``R_new = R_old ⊎ ΔR`` (insertion) and expanding the
product, the added rows are exactly

    Σ over occurrences i of R:
        T1^new, ..., T_{i-1}^new, ΔR at i, T_{i+1}^old, ..., Tn^old

which handles self-joins (R appearing several times) without double
counting. Deletions use the same telescope with ``R_new = R_old ∖ ΔR``.
The WHERE clause applies to each term as usual.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from ..blocks.query_block import QueryBlock
from ..engine.evaluator import _compile_predicate  # noqa: SLF001
from ..engine.table import Row, Table


def _core_rows(block: QueryBlock, resolve: Callable[[int], Table]) -> list[Row]:
    """Core rows of ``block`` resolving FROM items *by position*."""
    named = {}
    for i, rel in enumerate(block.from_):
        named[i] = resolve(i)

    index = {}
    rows: list[Row] = [()]
    offset = 0
    for i, rel in enumerate(block.from_):
        data = named[i]
        for j, col in enumerate(rel.columns):
            index[col] = offset + j
        offset += len(rel.columns)
        if not data.rows:
            rows = []
            continue
        rows = [left + right for left in rows for right in data.rows]
    for atom in block.where:
        predicate = _compile_predicate(atom, index)
        rows = [row for row in rows if predicate(row)]
    return rows


def delta_core_rows(
    block: QueryBlock,
    table_name: str,
    delta: Table,
    old: dict[str, Table],
    new: dict[str, Table],
) -> list[Row]:
    """Core rows contributed (or removed) by ``delta`` on ``table_name``.

    ``old`` and ``new`` give each base relation's content before and
    after the change; relations other than ``table_name`` must be
    identical in both (one table changes at a time).
    """
    occurrences = [
        i for i, rel in enumerate(block.from_) if rel.name == table_name
    ]
    out: list[Row] = []
    for term_pos in occurrences:

        def resolve(i: int, term_pos=term_pos) -> Table:
            rel = block.from_[i]
            if i == term_pos:
                return delta
            if rel.name != table_name:
                return new[rel.name]
            return new[table_name] if i < term_pos else old[table_name]

        out.extend(_core_rows(block, resolve))
    return out


def check_removable(table: Table, rows: Iterable[Sequence]) -> None:
    """Raise ``ValueError`` unless every row (with multiplicity) exists."""
    from collections import Counter

    need = Counter(tuple(r) for r in rows)
    have = Counter(table.rows)
    missing = {
        row: count - have[row]
        for row, count in need.items()
        if have[row] < count
    }
    if missing:
        raise ValueError(f"rows not present: {missing}")


def table_minus(table: Table, rows: Iterable[Sequence]) -> Table:
    """Multiset difference: remove one copy of each given row."""
    from collections import Counter

    to_remove = Counter(tuple(r) for r in rows)
    kept = []
    for row in table.rows:
        if to_remove[row] > 0:
            to_remove[row] -= 1
        else:
            kept.append(row)
    missing = +to_remove
    if missing:
        raise ValueError(f"rows not present: {dict(missing)}")
    return Table(table.columns, kept)


def table_plus(table: Table, rows: Iterable[Sequence]) -> Table:
    """Multiset union: append the given rows."""
    return Table(table.columns, table.rows + [tuple(r) for r in rows])

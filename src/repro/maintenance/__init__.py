"""Incremental view maintenance (the warehouse substrate)."""

from .delta import delta_core_rows, table_minus, table_plus
from .maintainer import MaintainedView, apply_change
from .state import AggState, GroupState

__all__ = [
    "delta_core_rows",
    "table_minus",
    "table_plus",
    "MaintainedView",
    "apply_change",
    "AggState",
    "GroupState",
]

"""Incremental view maintenance (the warehouse substrate)."""

from .delta import delta_core_rows, table_minus, table_plus
from .maintainer import (
    MaintainedView,
    ViewDelta,
    apply_change,
    register_delta_listener,
)
from .state import AggState, GroupState

__all__ = [
    "delta_core_rows",
    "table_minus",
    "table_plus",
    "MaintainedView",
    "ViewDelta",
    "apply_change",
    "register_delta_listener",
    "AggState",
    "GroupState",
]

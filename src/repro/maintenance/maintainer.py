"""Incremental maintenance of materialized views.

A :class:`MaintainedView` keeps the materialization of a single-block
view up to date as rows are inserted into / deleted from base tables,
without recomputing the view from scratch:

* delta core rows come from the telescoping product rule
  (:mod:`repro.maintenance.delta`), which handles self-joins;
* SUM/COUNT/AVG states update in O(1) per delta row;
* MIN/MAX update in O(1) on inserts and on deletes of non-extremal
  values; deleting a group's extremum marks the group *dirty*, and dirty
  groups are recomputed from base data in one batch at the next read —
  the standard treatment in the incremental-view-maintenance literature
  the paper cites ([BLT86, GMS93]).

This substrate completes the paper's warehouse story: Example 1.1's V1
can be kept fresh under a stream of Calls inserts while the rewriter
answers queries from it.
"""

from __future__ import annotations

import threading
from collections import Counter
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

from ..blocks.exprs import Aggregate, Arith, Expr, has_aggregate
from ..blocks.query_block import QueryBlock, ViewDef
from ..blocks.terms import Column, Comparison, Constant
from ..engine.database import Database
from ..engine.evaluator import _compile_row_expr  # noqa: SLF001
from ..engine.table import Table
from ..errors import EvaluationError, UnsupportedSQLError
from .delta import check_removable, delta_core_rows, table_minus, table_plus
from .state import AggState, GroupState


@dataclass(frozen=True)
class ViewDelta:
    """One observed base-table change, as seen by one maintained view.

    Emitted to registered delta listeners *after* the view's
    materialization has absorbed the change, so a listener reading
    :meth:`MaintainedView.table` sees post-delta state. ``relevant`` is
    False when the view does not read the changed table (the
    materialization is untouched, but cache layers keyed on the whole
    database may still care).
    """

    view_name: str
    table_name: str
    inserted: int
    deleted: int
    relevant: bool
    maintainer: "MaintainedView"


#: Registered ``Callable[[ViewDelta], None]`` listeners. The serving
#: daemon's shared memo tier hooks in here: a view delta bumps the
#: tier's epoch and evicts the affected fingerprints without a restart.
_DELTA_LISTENERS: list[Callable[[ViewDelta], None]] = []
_LISTENER_LOCK = threading.Lock()


def register_delta_listener(
    listener: Callable[[ViewDelta], None],
) -> Callable[[], None]:
    """Subscribe to every maintained-view delta; returns an unsubscribe.

    Listeners run synchronously on the maintaining thread, after the
    view state is updated. A listener that raises propagates to the
    caller of ``observe``/``apply`` — maintenance itself has already
    completed at that point.
    """
    with _LISTENER_LOCK:
        _DELTA_LISTENERS.append(listener)

    def unsubscribe() -> None:
        with _LISTENER_LOCK:
            try:
                _DELTA_LISTENERS.remove(listener)
            except ValueError:
                pass

    return unsubscribe


def _notify_delta(event: ViewDelta) -> None:
    with _LISTENER_LOCK:
        listeners = list(_DELTA_LISTENERS)
    for listener in listeners:
        listener(event)


class MaintainedView:
    """An incrementally maintained materialization of one view."""

    def __init__(self, view: ViewDef, database: Database):
        self.view = view
        self.db = database
        block = view.block
        if block.distinct:
            raise UnsupportedSQLError(
                "incremental maintenance of DISTINCT views is not supported"
            )
        for rel in block.from_:
            if not database.catalog.is_table(rel.name):
                raise UnsupportedSQLError(
                    f"view {view.name} reads {rel.name}, which is not a "
                    f"base table; stack maintainers instead"
                )
        self.block = block

        # Positional column index over the core table.
        self._index: dict[Column, int] = {}
        offset = 0
        for rel in block.from_:
            for j, col in enumerate(rel.columns):
                self._index[col] = offset + j
            offset += len(rel.columns)

        self._group_key_fns = [
            _compile_row_expr(col, self._index) for col in block.group_by
        ]
        #: distinct aggregates of SELECT and HAVING, each with a compiled
        #: argument evaluator.
        self._aggs: list[Aggregate] = list(
            dict.fromkeys(block.all_aggregates())
        )
        self._agg_pos = {agg: i for i, agg in enumerate(self._aggs)}
        self._agg_arg_fns = [
            _compile_row_expr(agg.arg, self._index) for agg in self._aggs
        ]

        self.is_aggregation = block.is_aggregation
        if self.is_aggregation:
            self._groups: dict[tuple, GroupState] = {}
        else:
            self._row_counts: Counter = Counter()
            self._select_fns = [
                _compile_row_expr(item.expr, self._index)
                for item in block.select
            ]

        self.maintenance_rows = 0  # delta rows processed (for benches)
        self._initialize()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _base_tables(self) -> dict[str, Table]:
        return {
            rel.name: self.db.table(rel.name) for rel in self.block.from_
        }

    def _initialize(self) -> None:
        """Full initial computation (the only non-incremental step)."""
        tables = self._base_tables()
        rows = delta_core_rows(
            # Trick: treat the whole first table as the delta against an
            # empty "old" state; the telescope then yields the full core.
            self.block,
            self.block.from_[0].name,
            tables[self.block.from_[0].name],
            old={
                name: Table(t.columns, [])
                for name, t in tables.items()
            },
            new=tables,
        )
        self._apply_core_delta(rows, sign=+1)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def apply(
        self,
        table_name: str,
        inserts: Iterable[Sequence] = (),
        deletes: Iterable[Sequence] = (),
    ) -> None:
        """Apply a base-table change and maintain the view.

        Also updates the underlying :class:`Database`. When several
        maintained views share one database, use :func:`apply_change`
        instead, which lets every maintainer observe the pre-change state
        before the database mutates.
        """
        self.observe(table_name, inserts, deletes, update_database=True)

    def observe(
        self,
        table_name: str,
        inserts: Iterable[Sequence] = (),
        deletes: Iterable[Sequence] = (),
        update_database: bool = True,
    ) -> None:
        """Maintain the view for a base-table change.

        Must be called *before* the shared database reflects the change.
        With ``update_database=True`` the database is mutated here (in
        O(delta)); with ``False`` the caller applies the change itself —
        see :func:`apply_change` for coordinating several maintainers.
        """
        insert_rows = [tuple(r) for r in inserts]
        delete_rows = [tuple(r) for r in deletes]
        schema = self.db.catalog.table(table_name)
        occurrences = sum(
            1 for rel in self.block.from_ if rel.name == table_name
        )
        relevant = occurrences > 0

        # Snapshots are only needed when the view self-joins the changed
        # table (the telescope then consults old/new side by side).
        current = self.db.table(table_name)
        if delete_rows:
            # Fail *before* touching any state: a partial update on a bad
            # delete would silently corrupt the materialization.
            check_removable(current, delete_rows)
        if delete_rows:
            if relevant:
                if occurrences > 1:
                    old_t: Table = Table(current.columns, list(current.rows))
                    new_t = table_minus(current, delete_rows)
                else:
                    old_t = new_t = current
                removed = delta_core_rows(
                    self.block,
                    table_name,
                    Table(schema.columns, delete_rows),
                    old=self._with(table_name, old_t),
                    new=self._with(table_name, new_t),
                )
                self._apply_core_delta(removed, sign=-1)
            if update_database:
                self.db.remove_rows(table_name, delete_rows)
                current = self.db.table(table_name)
            else:
                current = table_minus(current, delete_rows)
        if insert_rows:
            if relevant:
                if occurrences > 1:
                    old_t = Table(current.columns, list(current.rows))
                    new_t = table_plus(current, insert_rows)
                else:
                    old_t = new_t = current
                added = delta_core_rows(
                    self.block,
                    table_name,
                    Table(schema.columns, insert_rows),
                    old=self._with(table_name, old_t),
                    new=self._with(table_name, new_t),
                )
                self._apply_core_delta(added, sign=+1)
            if update_database:
                self.db.append_rows(table_name, insert_rows)
        if insert_rows or delete_rows:
            _notify_delta(
                ViewDelta(
                    view_name=self.view.name,
                    table_name=table_name,
                    inserted=len(insert_rows),
                    deleted=len(delete_rows),
                    relevant=relevant,
                    maintainer=self,
                )
            )

    def _with(self, table_name: str, content: Table) -> dict[str, Table]:
        tables = self._base_tables()
        tables[table_name] = content
        return tables

    def _apply_core_delta(self, rows, sign: int) -> None:
        self.maintenance_rows += len(rows)
        if not self.is_aggregation:
            for row in rows:
                out = tuple(fn(row) for fn in self._select_fns)
                self._row_counts[out] += sign
                if self._row_counts[out] == 0:
                    del self._row_counts[out]
            return
        for row in rows:
            key = tuple(fn(row) for fn in self._group_key_fns)
            state = self._groups.get(key)
            if state is None:
                state = GroupState(
                    key=key,
                    aggregates=[AggState(agg.func) for agg in self._aggs],
                )
                self._groups[key] = state
            values = tuple(fn(row) for fn in self._agg_arg_fns)
            if sign > 0:
                state.insert(values)
            else:
                state.delete(values)
            if state.empty:
                del self._groups[key]

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def table(self) -> Table:
        """The current materialization (header = the view's output names)."""
        if not self.is_aggregation:
            rows = []
            for row, count in self._row_counts.items():
                rows.extend([row] * count)
            return Table(self.view.output_names, rows)

        self._recompute_dirty()
        out_rows = []
        for state in self._groups.values():
            evaluator = _StateEvaluator(self, state)
            if all(evaluator.holds(atom) for atom in self.block.having):
                out_rows.append(
                    tuple(
                        evaluator.value(item.expr)
                        for item in self.block.select
                    )
                )
        if not self.block.group_by and not self._groups:
            # SQL's one-row-on-empty-input rule for global aggregates.
            empty = GroupState(
                key=(), aggregates=[AggState(a.func) for a in self._aggs]
            )
            evaluator = _StateEvaluator(self, empty)
            if all(evaluator.holds(atom) for atom in self.block.having):
                out_rows.append(
                    tuple(
                        evaluator.value(item.expr)
                        for item in self.block.select
                    )
                )
        return Table(self.view.output_names, out_rows)

    def _recompute_dirty(self) -> None:
        dirty_keys = {
            key
            for key, state in self._groups.items()
            if state.needs_recompute
        }
        if not dirty_keys:
            return
        tables = self._base_tables()
        rows = delta_core_rows(
            self.block,
            self.block.from_[0].name,
            tables[self.block.from_[0].name],
            old={n: Table(t.columns, []) for n, t in tables.items()},
            new=tables,
        )
        rebuilt: dict[tuple, GroupState] = {}
        for row in rows:
            key = tuple(fn(row) for fn in self._group_key_fns)
            if key not in dirty_keys:
                continue
            state = rebuilt.get(key)
            if state is None:
                state = GroupState(
                    key=key,
                    aggregates=[AggState(a.func) for a in self._aggs],
                )
                rebuilt[key] = state
            state.insert(tuple(fn(row) for fn in self._agg_arg_fns))
        for key in dirty_keys:
            if key in rebuilt:
                self._groups[key] = rebuilt[key]
            else:
                del self._groups[key]

    def consistency_check(self) -> bool:
        """Compare against a fresh full evaluation (used by tests)."""
        fresh = self.db.execute(self.block)
        return self.table().multiset_equal(fresh)


def apply_change(
    maintainers: Sequence["MaintainedView"],
    table_name: str,
    inserts: Iterable[Sequence] = (),
    deletes: Iterable[Sequence] = (),
    database: Optional[Database] = None,
) -> None:
    """Apply one base-table change across several maintained views.

    Every maintainer observes the change against the *pre-change*
    database state, then the shared database is mutated once. Use this
    (rather than calling :meth:`MaintainedView.apply` on each) when
    multiple views share a database: a maintainer that observes after the
    database changed would compute its deltas against the wrong snapshot
    whenever its view self-joins the changed table.
    """
    insert_rows = [tuple(r) for r in inserts]
    delete_rows = [tuple(r) for r in deletes]
    db = database
    for maintainer in maintainers:
        if db is None:
            db = maintainer.db
        elif maintainer.db is not db:
            raise ValueError(
                "apply_change requires all maintainers to share a database"
            )
        maintainer.observe(
            table_name, insert_rows, delete_rows, update_database=False
        )
    if db is None:
        raise ValueError("no maintainers and no database given")
    if delete_rows:
        db.remove_rows(table_name, delete_rows)
    if insert_rows:
        db.append_rows(table_name, insert_rows)


class _StateEvaluator:
    """Evaluates SELECT/HAVING expressions against a GroupState."""

    def __init__(self, owner: MaintainedView, state: GroupState):
        self.owner = owner
        self.state = state
        self.key_map = dict(zip(owner.block.group_by, state.key))

    def value(self, expr: Expr):
        if isinstance(expr, Column):
            try:
                return self.key_map[expr]
            except KeyError:
                raise EvaluationError(
                    f"column {expr} is not a grouping column"
                ) from None
        if isinstance(expr, Constant):
            return expr.value
        if isinstance(expr, Aggregate):
            return self.state.aggregates[self.owner._agg_pos[expr]].value()
        if isinstance(expr, Arith):
            left = self.value(expr.left)
            right = self.value(expr.right)
            if left is None or right is None:
                return None
            return expr.op.apply(left, right)
        raise EvaluationError(f"cannot evaluate {expr}")

    def holds(self, atom: Comparison) -> bool:
        left = self.value(atom.left)
        right = self.value(atom.right)
        if left is None or right is None:
            return False
        return atom.op.holds(left, right)

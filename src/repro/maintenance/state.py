"""Per-group incremental aggregate state.

The warehouse setting of the paper (Section 1; [BLT86, GMS93, JMS95])
keeps summary views materialized while the base tables change. This
module holds the per-group state that makes SUM/COUNT/AVG maintainable in
O(1) per delta row, and flags the cases (MIN/MAX losing their extremum)
where a group must be recomputed from base data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Optional

from ..blocks.exprs import AggFunc


@dataclass
class AggState:
    """Incremental state for one aggregate over one group."""

    func: AggFunc
    count: int = 0
    total: object = 0
    extremum: Optional[object] = None
    #: set when a deletion removed the current extremum; the group's
    #: maintainer must recompute from base data before reading.
    dirty: bool = False

    def insert(self, value) -> None:
        self.count += 1
        if self.func in (AggFunc.SUM, AggFunc.AVG):
            self.total = self.total + value
        elif self.func is AggFunc.MIN:
            if self.extremum is None or value < self.extremum:
                self.extremum = value
        elif self.func is AggFunc.MAX:
            if self.extremum is None or value > self.extremum:
                self.extremum = value

    def delete(self, value) -> None:
        self.count -= 1
        if self.func in (AggFunc.SUM, AggFunc.AVG):
            self.total = self.total - value
        elif self.func in (AggFunc.MIN, AggFunc.MAX):
            # Removing a non-extremal value never changes MIN/MAX; removing
            # the extremum may expose a different one, which only the base
            # data knows.
            if self.count == 0:
                self.extremum = None
                self.dirty = False
            elif value == self.extremum:
                self.dirty = True

    def value(self):
        """Current aggregate value; invalid while ``dirty``."""
        if self.count == 0:
            return 0 if self.func is AggFunc.COUNT else None
        if self.func is AggFunc.COUNT:
            return self.count
        if self.func is AggFunc.SUM:
            return self.total
        if self.func is AggFunc.AVG:
            if isinstance(self.total, int):
                return Fraction(self.total, self.count)
            return self.total / self.count
        if self.dirty:
            raise RuntimeError(
                "reading a dirty MIN/MAX state; recompute the group first"
            )
        return self.extremum


@dataclass
class GroupState:
    """All aggregate states for one group plus its membership count."""

    key: tuple
    multiplicity: int = 0
    aggregates: list[AggState] = field(default_factory=list)

    @property
    def empty(self) -> bool:
        return self.multiplicity <= 0

    @property
    def needs_recompute(self) -> bool:
        return any(a.dirty for a in self.aggregates)

    def insert(self, values: tuple) -> None:
        self.multiplicity += 1
        for state, value in zip(self.aggregates, values):
            state.insert(value)

    def delete(self, values: tuple) -> None:
        self.multiplicity -= 1
        for state, value in zip(self.aggregates, values):
            state.delete(value)

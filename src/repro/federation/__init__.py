"""Live-database federation: rewriting middleware over DB-API connections.

:func:`ingest_catalog` introspects a live database into a repro
:class:`~repro.catalog.schema.Catalog`; :class:`SqlRewriter` turns SQL
text into dialect-correct rewritten SQL text; :class:`FederationSession`
binds both to one connection and can execute and verify on it. See
``docs/dialects.md`` for the quickstart.
"""

from .catalog import (
    IngestedRelation,
    IngestReport,
    ingest_catalog,
    parse_materialized_views,
)
from .middleware import (
    FederationResult,
    FederationSession,
    SqlRewriteOutcome,
    SqlRewriter,
)

__all__ = [
    "FederationResult",
    "FederationSession",
    "IngestReport",
    "IngestedRelation",
    "SqlRewriteOutcome",
    "SqlRewriter",
    "ingest_catalog",
    "parse_materialized_views",
]

"""Ingest a live database's catalog over a DB-API connection.

The federation entry point: point repro at a real DBMS and come back
with a :class:`~repro.catalog.schema.Catalog` describing its base
tables, its views (parsed back through repro's own SQL front end so they
become rewriting candidates), and any *materialized* views — tables the
operator declares to hold the result of a defining query, the Hasura
deployment shape where summary tables sit next to the facts they
summarize.

Introspection is dialect-aware but deliberately lowest-common-
denominator: SQLite's ``sqlite_master`` + ``PRAGMA table_info``, and
``information_schema`` for DuckDB/Postgres. View definitions that fall
outside the paper's query class (OR, subqueries, outer joins, ...) are
skipped with a reason, never fatal — a federation over a big schema
should use every view it *can* parse.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from ..blocks.normalize import normalize_select, parse_view
from ..blocks.query_block import ViewDef
from ..catalog.schema import Catalog, table
from ..dialects import DialectLike, get_dialect
from ..errors import ReproError
from ..sqlparser.ast import CreateViewStmt, SelectStmt
from ..sqlparser.parser import parse_statement


@dataclass(frozen=True)
class IngestedRelation:
    """One live relation as discovered: name, columns, primary key."""

    name: str
    columns: tuple[str, ...]
    primary_key: tuple[str, ...] = ()


@dataclass
class IngestReport:
    """What :func:`ingest_catalog` found, kept, and had to skip."""

    dialect: str = "sqlite"
    tables: list[str] = field(default_factory=list)
    views: list[str] = field(default_factory=list)
    materialized: list[str] = field(default_factory=list)
    #: (relation name, reason) for every view left out of the catalog.
    skipped: list[tuple[str, str]] = field(default_factory=list)

    def to_json_dict(self) -> dict:
        return {
            "dialect": self.dialect,
            "tables": list(self.tables),
            "views": list(self.views),
            "materialized": list(self.materialized),
            "skipped": [list(pair) for pair in self.skipped],
        }

    def summary(self) -> str:
        parts = [
            f"{len(self.tables)} table(s)",
            f"{len(self.views)} view(s)",
        ]
        if self.materialized:
            parts.append(f"{len(self.materialized)} materialized")
        if self.skipped:
            parts.append(f"{len(self.skipped)} skipped")
        return f"ingested [{self.dialect}]: " + ", ".join(parts)


# ----------------------------------------------------------------------
# Introspection
# ----------------------------------------------------------------------


def _sqlite_relations(connection) -> tuple[list, list]:
    """(tables, views-with-sql) from ``sqlite_master``."""
    cursor = connection.cursor()
    cursor.execute(
        "SELECT name, type, sql FROM sqlite_master "
        "WHERE type IN ('table', 'view') AND name NOT LIKE 'sqlite_%' "
        "ORDER BY name"
    )
    tables: list[IngestedRelation] = []
    views: list[tuple[str, str, tuple[str, ...]]] = []
    for name, kind, sql in cursor.fetchall():
        info = connection.cursor()
        quoted = '"' + name.replace('"', '""') + '"'
        info.execute(f"PRAGMA table_info({quoted})")
        rows = info.fetchall()
        columns = tuple(row[1] for row in rows)
        pk = tuple(
            row[1] for row in sorted(rows, key=lambda r: r[5]) if row[5]
        )
        if kind == "table":
            tables.append(IngestedRelation(name, columns, pk))
        else:
            views.append((name, sql or "", columns))
    return tables, views


def _information_schema_relations(connection) -> tuple[list, list]:
    """(tables, views-with-sql) from ``information_schema``."""
    hidden = ("information_schema", "pg_catalog")
    cursor = connection.cursor()
    cursor.execute(
        "SELECT table_schema, table_name, table_type "
        "FROM information_schema.tables "
        "ORDER BY table_schema, table_name"
    )
    relations = [
        (schema, name, kind)
        for schema, name, kind in cursor.fetchall()
        if schema not in hidden
    ]

    def quote_str(value: str) -> str:
        # Inline literals instead of placeholders: paramstyle differs
        # across drivers (qmark vs format) but '' escaping does not.
        return "'" + value.replace("'", "''") + "'"

    def columns_of(schema: str, name: str) -> tuple[str, ...]:
        info = connection.cursor()
        info.execute(
            "SELECT column_name FROM information_schema.columns "
            f"WHERE table_schema = {quote_str(schema)} "
            f"AND table_name = {quote_str(name)} "
            "ORDER BY ordinal_position"
        )
        return tuple(row[0] for row in info.fetchall())

    tables: list[IngestedRelation] = []
    views: list[tuple[str, str, tuple[str, ...]]] = []
    for schema, name, kind in relations:
        columns = columns_of(schema, name)
        if kind == "VIEW":
            defn = connection.cursor()
            defn.execute(
                "SELECT view_definition FROM information_schema.views "
                f"WHERE table_schema = {quote_str(schema)} "
                f"AND table_name = {quote_str(name)}"
            )
            row = defn.fetchone()
            views.append((name, (row[0] or "") if row else "", columns))
        else:
            tables.append(IngestedRelation(name, columns, ()))
    return tables, views


def _parse_view_sql(
    name: str, sql: str, columns: tuple[str, ...], catalog: Catalog
) -> ViewDef:
    """Parse a stored view definition into a ViewDef against ``catalog``.

    Accepts both full ``CREATE VIEW`` text (sqlite_master) and a bare
    ``SELECT`` (information_schema ``view_definition``); the introspected
    column names win when the definition carries no explicit list.
    """
    text = sql.strip().rstrip(";").strip()
    if not text:
        raise ReproError(f"view {name}: no stored definition")
    if text.upper().startswith("CREATE"):
        stmt = parse_statement(text)
        if not isinstance(stmt, CreateViewStmt):
            raise ReproError(f"view {name}: not a CREATE VIEW statement")
        select: SelectStmt = stmt.select
        declared = stmt.columns
    else:
        stmt = parse_statement(text)
        if not isinstance(stmt, SelectStmt):
            raise ReproError(f"view {name}: not a SELECT definition")
        select = stmt
        declared = ()
    block = normalize_select(select, catalog)
    output_names = declared or columns or block.output_names()
    return ViewDef(name, block, tuple(output_names))


# ----------------------------------------------------------------------
# The entry point
# ----------------------------------------------------------------------


def ingest_catalog(
    connection,
    dialect: DialectLike = "sqlite",
    materialized: Optional[Mapping[str, str]] = None,
    row_counts: bool = False,
) -> tuple[Catalog, IngestReport]:
    """Build a :class:`Catalog` from a live DB-API connection.

    ``materialized`` maps table names to the SQL of the query each table
    materializes; those tables are registered as views (rewriting
    candidates) rather than base tables, so emitted rewritings reference
    the summary table directly. ``row_counts=True`` additionally runs
    ``SELECT COUNT(*)`` per relation so the cost model ranks rewritings
    with live cardinalities.

    Views whose stored SQL falls outside the supported query class are
    recorded in ``report.skipped`` and left out of the catalog.
    """
    resolved = get_dialect(dialect)
    materialized = dict(materialized or {})
    report = IngestReport(dialect=resolved.name)

    if resolved.name in ("ansi", "sqlite"):
        raw_tables, raw_views = _sqlite_relations(connection)
    else:
        raw_tables, raw_views = _information_schema_relations(connection)

    catalog = Catalog()
    deferred_tables = []
    for relation in raw_tables:
        if relation.name in materialized:
            deferred_tables.append(relation)
            continue
        catalog.add_table(
            table(
                relation.name,
                relation.columns,
                key=relation.primary_key or None,
            )
        )
        report.tables.append(relation.name)

    # Views may reference each other; retry until a fixpoint so
    # dependency order never matters.
    pending: list[tuple[str, str, tuple[str, ...], str]] = [
        (name, sql, columns, "view") for name, sql, columns in raw_views
    ] + [
        (rel.name, materialized[rel.name], rel.columns, "materialized")
        for rel in deferred_tables
    ]
    reasons: dict[str, str] = {}
    while pending:
        progressed = False
        still_pending = []
        for name, sql, columns, kind in pending:
            try:
                view = _parse_view_sql(name, sql, columns, catalog)
                catalog.add_view(view)
            except ReproError as error:
                reasons[name] = str(error)
                still_pending.append((name, sql, columns, kind))
                continue
            progressed = True
            (report.views if kind == "view" else report.materialized).append(
                name
            )
        pending = still_pending
        if not progressed:
            break
    for name, _sql, _columns, _kind in pending:
        report.skipped.append((name, reasons.get(name, "unparseable")))

    if row_counts:
        for name in report.tables:
            cursor = connection.cursor()
            cursor.execute(
                f'SELECT COUNT(*) FROM {resolved.quote_ident(name)}'
            )
            catalog.set_table_row_count(name, cursor.fetchone()[0])
        for name in report.views + report.materialized:
            cursor = connection.cursor()
            cursor.execute(
                f'SELECT COUNT(*) FROM {resolved.quote_ident(name)}'
            )
            catalog.set_row_count(name, cursor.fetchone()[0])
    return catalog, report


def parse_materialized_views(
    catalog: Catalog, definitions: Mapping[str, str]
) -> list[ViewDef]:
    """Register extra materialized-view definitions on a built catalog.

    For deployments where the summary tables live in the database but
    their defining SQL lives in configuration (the common case): each
    ``name -> SELECT`` entry becomes a catalog view named after the
    table the rewritten SQL should reference.
    """
    views = []
    for name, sql in definitions.items():
        view = parse_view(sql, catalog, name=name)
        catalog.add_view(view)
        views.append(view)
    return views

"""Rewriter-as-middleware: SQL text in, dialect-correct SQL text out.

:class:`SqlRewriter` is the pure (no-connection) middleware: it parses
incoming SQL against a catalog, runs the existing planner, and emits the
winning rewriting — auxiliary ``CREATE VIEW`` statements plus the final
``SELECT`` — in the target dialect. :class:`FederationSession` binds
that middleware to a live DB-API connection: it can ingest the catalog
from the database itself, execute the rewritten statements, and (in
verify mode) cross-check the rewritten answer against the original
query on the very same live database, multiset-exactly.

This is the deployment shape of views-as-queryable-tables middlewares
(Hasura et al.): the application keeps sending plain SQL over the
facts; the middleware transparently routes it through the summary
tables when the paper's conditions prove the detour sound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Union

from ..blocks.normalize import parse_query
from ..blocks.query_block import QueryBlock
from ..blocks.to_sql import block_to_sql, view_to_sql
from ..catalog.schema import Catalog
from ..core.rewriter import RewriteEngine
from ..dialects import DialectLike, get_dialect
from ..obs.budget import SearchBudget
from ..obs.metrics import current_metrics
from ..oracle.values import rows_multiset_equal
from ..service.requests import API_SCHEMA
from .catalog import IngestReport, ingest_catalog, parse_materialized_views


@dataclass(frozen=True)
class SqlRewriteOutcome:
    """The middleware's answer for one incoming SQL statement."""

    input_sql: str
    dialect: str
    #: The final SELECT, dialect-emitted (rewritten or pass-through).
    sql: str
    #: Everything to execute in order: auxiliary CREATE VIEW statements
    #: (empty unless the rewriting needs them), then the final SELECT.
    statements: tuple[str, ...]
    rewritten: bool
    used_views: tuple[str, ...] = ()
    #: Names of the auxiliary views ``statements`` creates (callers drop
    #: them after executing the SELECT).
    aux_view_names: tuple[str, ...] = ()
    cost_original: float = 0.0
    cost_rewritten: Optional[float] = None
    exhausted: bool = False

    def to_json_dict(self) -> dict:
        return {
            "schema": API_SCHEMA,
            "kind": "sql-rewrite",
            "dialect": self.dialect,
            "input": self.input_sql,
            "sql": self.sql,
            "statements": list(self.statements),
            "rewritten": self.rewritten,
            "used_views": list(self.used_views),
            "cost_original": self.cost_original,
            "cost_rewritten": self.cost_rewritten,
            "exhausted": self.exhausted,
        }


class SqlRewriter:
    """Parse → plan → emit middleware over one catalog and dialect.

    ``only_improving=True`` (the default) passes the original query
    through unless the best rewriting's estimated cost beats direct
    evaluation — a middleware must never make a query slower on purpose.
    With ``only_improving=False`` the best rewriting always wins when
    one exists (useful for conformance testing).
    """

    def __init__(
        self,
        catalog: Catalog,
        dialect: DialectLike = "sqlite",
        budget: Optional[SearchBudget] = None,
        only_improving: bool = True,
    ):
        self.catalog = catalog
        self.dialect = get_dialect(dialect)
        self.engine = RewriteEngine(catalog, budget=budget)
        self.only_improving = only_improving

    def rewrite_sql(
        self, sql: Union[str, QueryBlock]
    ) -> SqlRewriteOutcome:
        """Rewrite one SQL statement (or pre-parsed block)."""
        if isinstance(sql, QueryBlock):
            query, input_sql = sql, block_to_sql(sql)
        else:
            input_sql = sql
            query = parse_query(sql, self.catalog)
        result = self.engine.rewrite(query)
        passthrough = block_to_sql(query, dialect=self.dialect)
        best = result.ranked[0] if result.ranked else None
        rewritten = best is not None and (
            not self.only_improving or best.cost < result.original_cost
        )
        metrics = current_metrics()
        if metrics is not None:
            metrics.counter(
                "repro_federation_statements_total",
                "SQL statements through the middleware, by outcome.",
                ("rewritten",),
            ).labels("true" if rewritten else "false").inc()
        if rewritten:
            rewriting = best.rewriting
            aux = tuple(
                view_to_sql(v, dialect=self.dialect)
                for v in rewriting.aux_views
            )
            final = block_to_sql(rewriting.query, dialect=self.dialect)
            return SqlRewriteOutcome(
                input_sql=input_sql,
                dialect=self.dialect.name,
                sql=final,
                statements=aux + (final,),
                rewritten=True,
                used_views=tuple(rewriting.view_names),
                aux_view_names=tuple(v.name for v in rewriting.aux_views),
                cost_original=result.original_cost,
                cost_rewritten=best.cost,
                exhausted=result.exhausted,
            )
        return SqlRewriteOutcome(
            input_sql=input_sql,
            dialect=self.dialect.name,
            sql=passthrough,
            statements=(passthrough,),
            rewritten=False,
            cost_original=result.original_cost,
            exhausted=result.exhausted,
        )


@dataclass
class FederationResult:
    """One executed statement: the rows plus how they were obtained."""

    outcome: SqlRewriteOutcome
    rows: list = field(default_factory=list)
    #: None when verification was not requested; otherwise whether the
    #: rewritten rows multiset-matched the original query's rows on the
    #: same live database.
    verified: Optional[bool] = None
    verify_rows: Optional[list] = None

    def to_json_dict(self) -> dict:
        doc = self.outcome.to_json_dict()
        doc["rows"] = [list(row) for row in self.rows]
        if self.verified is not None:
            doc["verified"] = self.verified
        return doc


class FederationSession:
    """A live connection fronted by the rewriting middleware.

    The catalog defaults to whatever :func:`ingest_catalog` discovers on
    the connection; ``materialized`` declares summary tables and their
    defining SQL (see :mod:`repro.federation.catalog`).
    """

    def __init__(
        self,
        connection,
        dialect: DialectLike = "sqlite",
        catalog: Optional[Catalog] = None,
        materialized: Optional[Mapping[str, str]] = None,
        budget: Optional[SearchBudget] = None,
        only_improving: bool = True,
        row_counts: bool = False,
    ):
        self.connection = connection
        self.dialect = get_dialect(dialect)
        if catalog is None:
            catalog, self.report = ingest_catalog(
                connection,
                dialect=self.dialect,
                materialized=materialized,
                row_counts=row_counts,
            )
            metrics = current_metrics()
            if metrics is not None:
                metrics.counter(
                    "repro_federation_ingests_total",
                    "Catalogs ingested from live connections.",
                ).inc()
        else:
            self.report = IngestReport(dialect=self.dialect.name)
            if materialized:
                parse_materialized_views(catalog, materialized)
        self.catalog = catalog
        self.rewriter = SqlRewriter(
            catalog,
            dialect=self.dialect,
            budget=budget,
            only_improving=only_improving,
        )

    # ------------------------------------------------------------------

    def rewrite_sql(self, sql: str) -> SqlRewriteOutcome:
        """Middleware only: no execution, just the emitted SQL."""
        return self.rewriter.rewrite_sql(sql)

    def execute(
        self, sql: str, rewrite: bool = True, verify: bool = False
    ) -> FederationResult:
        """Rewrite (optionally) and execute one statement on the live DB.

        ``verify=True`` additionally runs the *original* query on the
        same connection and checks multiset-equality against the
        rewritten rows — the end-to-end federation soundness check.
        """
        if rewrite:
            outcome = self.rewriter.rewrite_sql(sql)
        else:
            query = parse_query(sql, self.catalog)
            passthrough = block_to_sql(query, dialect=self.dialect)
            outcome = SqlRewriteOutcome(
                input_sql=sql,
                dialect=self.dialect.name,
                sql=passthrough,
                statements=(passthrough,),
                rewritten=False,
            )
        rows = self._run(outcome)
        result = FederationResult(outcome=outcome, rows=rows)
        if verify and outcome.rewritten:
            query = parse_query(sql, self.catalog)
            direct_sql = block_to_sql(query, dialect=self.dialect)
            cursor = self.connection.cursor()
            cursor.execute(direct_sql)
            direct = [tuple(row) for row in cursor.fetchall()]
            result.verify_rows = direct
            result.verified = rows_multiset_equal(rows, direct)
        elif verify:
            result.verified = True
        if verify:
            metrics = current_metrics()
            if metrics is not None:
                outcome_label = (
                    "passthrough"
                    if not outcome.rewritten
                    else "ok" if result.verified else "mismatch"
                )
                metrics.counter(
                    "repro_federation_verify_total",
                    "Live verify runs, by outcome.",
                    ("outcome",),
                ).labels(outcome_label).inc()
        return result

    def _run(self, outcome: SqlRewriteOutcome) -> list:
        cursor = self.connection.cursor()
        try:
            for statement in outcome.statements[:-1]:
                cursor.execute(statement)
            cursor.execute(outcome.statements[-1])
            return [tuple(row) for row in cursor.fetchall()]
        finally:
            for name in reversed(outcome.aux_view_names):
                cursor.execute(
                    f"DROP VIEW IF EXISTS {self.dialect.quote_ident(name)}"
                )

"""Render the SQL syntax tree back to text.

``parse(print(ast)) == ast`` round-trips for every tree the parser can
produce (property-tested in ``tests/sqlparser``) when printing in the
default :data:`ANSI` dialect — including adversarial identifiers, which
ANSI output quotes exactly when the lexer could not re-read them bare.

Every rendering decision that differs between SQL engines is delegated
to a :class:`~repro.dialects.Dialect` (identifier quoting, literal
spelling, division semantics). The dialects themselves live in
:mod:`repro.dialects`; :data:`ANSI` and :data:`SQLITE` are re-exported
here for the modules that predate that package.
"""

from __future__ import annotations

from ..dialects import ANSI, SQLITE, Dialect, get_dialect
from .ast import (
    BinOp,
    ColumnRef,
    CreateViewStmt,
    DerivedTable,
    FuncCall,
    Literal,
    SelectStmt,
    SqlComparison,
    SqlExpr,
    Star,
)

__all__ = [
    "ANSI",
    "SQLITE",
    "Dialect",
    "get_dialect",
    "print_comparison",
    "print_create_view",
    "print_expr",
    "print_select",
]


def print_expr(expr: SqlExpr, dialect: Dialect = ANSI) -> str:
    if isinstance(expr, ColumnRef):
        return dialect.column(expr)
    if isinstance(expr, Literal):
        return dialect.literal(expr.value)
    if isinstance(expr, Star):
        return "*"
    if isinstance(expr, FuncCall):
        return f"{expr.name}({print_expr(expr.arg, dialect)})"
    if isinstance(expr, BinOp):
        left = print_expr(expr.left, dialect)
        right = print_expr(expr.right, dialect)
        if expr.op == "/":
            return dialect.division(left, right)
        return f"({left} {expr.op} {right})"
    raise TypeError(f"not a SQL expression: {expr!r}")


def print_comparison(atom: SqlComparison, dialect: Dialect = ANSI) -> str:
    left = print_expr(atom.left, dialect)
    right = print_expr(atom.right, dialect)
    return f"{left} {atom.op} {right}"


def print_select(
    stmt: SelectStmt, indent: str = "", dialect: Dialect = ANSI
) -> str:
    lines: list[str] = []
    head = "SELECT DISTINCT " if stmt.distinct else "SELECT "
    items = []
    for item in stmt.items:
        rendered = print_expr(item.expr, dialect)
        if item.alias:
            rendered += f" AS {dialect.ident(item.alias)}"
        items.append(rendered)
    lines.append(head + ", ".join(items))

    tables = []
    for ref in stmt.from_tables:
        if isinstance(ref, DerivedTable):
            inner = print_select(ref.select, indent=indent + "      ", dialect=dialect)
            tables.append(f"({inner}) AS {dialect.ident(ref.alias)}")
            continue
        rendered = dialect.ident(ref.name)
        if ref.alias:
            rendered += f" AS {dialect.ident(ref.alias)}"
        tables.append(rendered)
    lines.append("FROM " + ", ".join(tables))

    if stmt.where:
        lines.append(
            "WHERE "
            + " AND ".join(print_comparison(a, dialect) for a in stmt.where)
        )
    if stmt.group_by:
        lines.append(
            "GROUP BY " + ", ".join(dialect.column(c) for c in stmt.group_by)
        )
    if stmt.having:
        lines.append(
            "HAVING "
            + " AND ".join(print_comparison(a, dialect) for a in stmt.having)
        )
    return ("\n" + indent).join(lines)


def print_create_view(stmt: CreateViewStmt, dialect: Dialect = ANSI) -> str:
    header = f"CREATE VIEW {dialect.ident(stmt.name)}"
    if stmt.columns:
        header += " (" + ", ".join(dialect.ident(c) for c in stmt.columns) + ")"
    return header + " AS\n" + print_select(stmt.select, dialect=dialect)

"""Render the SQL syntax tree back to text.

``parse(print(ast)) == ast`` round-trips for every tree the parser can
produce (property-tested in ``tests/sqlparser``).
"""

from __future__ import annotations

from .ast import (
    BinOp,
    ColumnRef,
    CreateViewStmt,
    DerivedTable,
    FuncCall,
    Literal,
    SelectStmt,
    SqlComparison,
    SqlExpr,
    Star,
)


def print_expr(expr: SqlExpr) -> str:
    if isinstance(expr, (ColumnRef, Literal, Star)):
        return str(expr)
    if isinstance(expr, FuncCall):
        return f"{expr.name}({print_expr(expr.arg)})"
    if isinstance(expr, BinOp):
        return f"({print_expr(expr.left)} {expr.op} {print_expr(expr.right)})"
    raise TypeError(f"not a SQL expression: {expr!r}")


def print_comparison(atom: SqlComparison) -> str:
    return f"{print_expr(atom.left)} {atom.op} {print_expr(atom.right)}"


def print_select(stmt: SelectStmt, indent: str = "") -> str:
    lines: list[str] = []
    head = "SELECT DISTINCT " if stmt.distinct else "SELECT "
    items = []
    for item in stmt.items:
        rendered = print_expr(item.expr)
        if item.alias:
            rendered += f" AS {item.alias}"
        items.append(rendered)
    lines.append(head + ", ".join(items))

    tables = []
    for ref in stmt.from_tables:
        if isinstance(ref, DerivedTable):
            inner = print_select(ref.select, indent=indent + "      ")
            tables.append(f"({inner}) AS {ref.alias}")
            continue
        rendered = ref.name
        if ref.alias:
            rendered += f" AS {ref.alias}"
        tables.append(rendered)
    lines.append("FROM " + ", ".join(tables))

    if stmt.where:
        lines.append("WHERE " + " AND ".join(map(print_comparison, stmt.where)))
    if stmt.group_by:
        lines.append("GROUP BY " + ", ".join(map(str, stmt.group_by)))
    if stmt.having:
        lines.append(
            "HAVING " + " AND ".join(map(print_comparison, stmt.having))
        )
    return ("\n" + indent).join(lines)


def print_create_view(stmt: CreateViewStmt) -> str:
    header = f"CREATE VIEW {stmt.name}"
    if stmt.columns:
        header += " (" + ", ".join(stmt.columns) + ")"
    return header + " AS\n" + print_select(stmt.select)

"""Recursive-descent parser for the single-block SQL dialect.

Grammar (conjunctive conditions only, per the paper's Section 2):

.. code-block:: text

    statement   := select | create_view
    create_view := CREATE VIEW ident [ '(' ident (',' ident)* ')' ] AS select
    select      := SELECT [DISTINCT] item (',' item)*
                   FROM table_ref (',' table_ref)*
                   [WHERE comparison (AND comparison)*]
                   [GROUP BY column_ref (',' column_ref)*]
                   [HAVING comparison (AND comparison)*] [';']
    item        := expr [[AS] ident]
    table_ref   := ident [[AS] ident]
    comparison  := expr ('<'|'<='|'='|'>='|'>'|'<>') expr
    expr        := term (('+'|'-') term)*
    term        := factor (('*'|'/') factor)*
    factor      := NUMBER | STRING | '-' factor | '(' expr ')'
                 | agg '(' (expr | '*') ')' | column_ref
    column_ref  := ident ['.' ident]

OR, NOT, subqueries, joins and set operators raise
:class:`~repro.errors.UnsupportedSQLError` with a pointer to the paper's
restriction rather than a generic syntax error.
"""

from __future__ import annotations

from typing import Optional, Union

from ..errors import SQLSyntaxError, UnsupportedSQLError
from .ast import (
    BinOp,
    ColumnRef,
    CreateTableStmt,
    CreateViewStmt,
    DerivedTable,
    FuncCall,
    Literal,
    SelectItemSyntax,
    SelectStmt,
    SqlComparison,
    SqlExpr,
    Star,
    TableRef,
)
from .lexer import tokenize
from .tokens import AGG_NAMES, Token, TokenType

Statement = Union["SelectStmt", "CreateViewStmt", "CreateTableStmt"]

_COMPARISON_OPS = frozenset({"<", "<=", "=", ">=", ">", "<>"})
_UNSUPPORTED = {
    "OR": "disjunction (the paper studies conjunctions of predicates)",
    "NOT": "negation (the paper studies conjunctions of predicates)",
    "IN": "subqueries (single-block queries only)",
    "EXISTS": "subqueries (single-block queries only)",
    "UNION": "set operators (single-block queries only)",
    "JOIN": "explicit JOIN syntax (use comma-separated FROM with WHERE)",
    "ORDER": "ORDER BY (multiset results are unordered)",
    "LIMIT": "LIMIT",
}


class _Parser:
    def __init__(self, text: str):
        self.tokens = tokenize(text)
        self.pos = 0

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.current
        self.pos += 1
        return token

    def check(self, type_: TokenType, value: Optional[str] = None) -> bool:
        token = self.current
        if token.type is not type_:
            return False
        return value is None or token.value == value

    def accept(self, type_: TokenType, value: Optional[str] = None) -> Optional[Token]:
        if self.check(type_, value):
            return self.advance()
        return None

    def expect(self, type_: TokenType, value: Optional[str] = None) -> Token:
        if self.check(type_, value):
            return self.advance()
        token = self.current
        wanted = value or type_.name
        raise SQLSyntaxError(
            f"expected {wanted}, found {token.value!r}", token.line, token.column
        )

    def keyword(self, word: str) -> bool:
        return bool(self.accept(TokenType.KEYWORD, word))

    def reject_unsupported(self):
        token = self.current
        if token.type is TokenType.KEYWORD and token.value in _UNSUPPORTED:
            raise UnsupportedSQLError(
                f"{token.value} is not supported: {_UNSUPPORTED[token.value]}"
            )

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def parse_statement(self) -> Statement:
        stmt = self.parse_statement_only()
        self.accept(TokenType.SEMI)
        self.expect(TokenType.EOF)
        return stmt

    def parse_statement_only(self) -> Statement:
        """One statement, leaving any trailing tokens unconsumed."""
        if self.check(TokenType.KEYWORD, "CREATE"):
            self.advance()
            if self.check(TokenType.KEYWORD, "TABLE"):
                return self.parse_create_table()
            return self.parse_create_view()
        return self.parse_select()

    def parse_create_table(self) -> CreateTableStmt:
        self.expect(TokenType.KEYWORD, "TABLE")
        name = str(self.expect(TokenType.IDENT).value)
        self.expect(TokenType.LPAREN)
        columns: list[str] = []
        types: list[str] = []
        primary_key: tuple[str, ...] = ()
        uniques: list[tuple[str, ...]] = []

        def parse_column_list() -> tuple[str, ...]:
            self.expect(TokenType.LPAREN)
            cols = [str(self.expect(TokenType.IDENT).value)]
            while self.accept(TokenType.COMMA):
                cols.append(str(self.expect(TokenType.IDENT).value))
            self.expect(TokenType.RPAREN)
            return tuple(cols)

        while True:
            if self.check(TokenType.KEYWORD, "PRIMARY"):
                self.advance()
                self.expect(TokenType.KEYWORD, "KEY")
                if primary_key:
                    raise SQLSyntaxError(
                        f"table {name}: duplicate PRIMARY KEY clause"
                    )
                primary_key = parse_column_list()
            elif self.check(TokenType.KEYWORD, "UNIQUE"):
                self.advance()
                uniques.append(parse_column_list())
            else:
                column = str(self.expect(TokenType.IDENT).value)
                type_words: list[str] = []
                # Tolerant type parsing: identifiers plus an optional
                # parenthesized length, e.g. VARCHAR(30) or DOUBLE PRECISION.
                while self.check(TokenType.IDENT):
                    type_words.append(str(self.advance().value))
                    if self.accept(TokenType.LPAREN):
                        length = self.expect(TokenType.NUMBER).value
                        self.expect(TokenType.RPAREN)
                        type_words[-1] += f"({length})"
                columns.append(column)
                types.append(" ".join(type_words))
                if self.check(TokenType.KEYWORD, "PRIMARY"):
                    self.advance()
                    self.expect(TokenType.KEYWORD, "KEY")
                    if primary_key:
                        raise SQLSyntaxError(
                            f"table {name}: duplicate PRIMARY KEY clause"
                        )
                    primary_key = (column,)
                elif self.check(TokenType.KEYWORD, "UNIQUE"):
                    self.advance()
                    uniques.append((column,))
            if not self.accept(TokenType.COMMA):
                break
        self.expect(TokenType.RPAREN)
        return CreateTableStmt(
            name=name,
            columns=tuple(columns),
            column_types=tuple(types),
            primary_key=primary_key,
            uniques=tuple(uniques),
        )

    def parse_create_view(self) -> CreateViewStmt:
        self.expect(TokenType.KEYWORD, "VIEW")
        name = self.expect(TokenType.IDENT).value
        columns: list[str] = []
        if self.accept(TokenType.LPAREN):
            columns.append(self.expect(TokenType.IDENT).value)
            while self.accept(TokenType.COMMA):
                columns.append(self.expect(TokenType.IDENT).value)
            self.expect(TokenType.RPAREN)
        self.expect(TokenType.KEYWORD, "AS")
        select = self.parse_select()
        return CreateViewStmt(str(name), tuple(map(str, columns)), select)

    def parse_select(self) -> SelectStmt:
        self.expect(TokenType.KEYWORD, "SELECT")
        distinct = self.keyword("DISTINCT")
        items = [self.parse_select_item()]
        while self.accept(TokenType.COMMA):
            items.append(self.parse_select_item())

        self.expect(TokenType.KEYWORD, "FROM")
        tables = [self.parse_table_ref()]
        while self.accept(TokenType.COMMA):
            tables.append(self.parse_table_ref())
        self.reject_unsupported()

        where: list[SqlComparison] = []
        if self.keyword("WHERE"):
            where = self.parse_conjunction()

        group_by: list[ColumnRef] = []
        if self.keyword("GROUPBY") or (
            self.keyword("GROUP") and (self.expect(TokenType.KEYWORD, "BY") or True)
        ):
            group_by.append(self.parse_column_ref())
            while self.accept(TokenType.COMMA):
                group_by.append(self.parse_column_ref())

        having: list[SqlComparison] = []
        if self.keyword("HAVING"):
            having = self.parse_conjunction()

        self.reject_unsupported()
        return SelectStmt(
            items=tuple(items),
            from_tables=tuple(tables),
            where=tuple(where),
            group_by=tuple(group_by),
            having=tuple(having),
            distinct=distinct,
        )

    # ------------------------------------------------------------------
    # Clauses
    # ------------------------------------------------------------------

    def parse_column_ref(self) -> ColumnRef:
        name = str(self.expect(TokenType.IDENT).value)
        if self.accept(TokenType.DOT):
            column = str(self.expect(TokenType.IDENT).value)
            return ColumnRef(column, qualifier=name)
        return ColumnRef(name)

    def parse_select_item(self) -> SelectItemSyntax:
        expr = self.parse_expr()
        alias: Optional[str] = None
        if self.keyword("AS"):
            alias = str(self.expect(TokenType.IDENT).value)
        elif self.check(TokenType.IDENT):
            alias = str(self.advance().value)
        return SelectItemSyntax(expr, alias)

    def parse_table_ref(self) -> Union[TableRef, DerivedTable]:
        if self.accept(TokenType.LPAREN):
            # A derived table: (SELECT ...) [AS] alias.
            select = self.parse_select()
            self.expect(TokenType.RPAREN)
            self.keyword("AS")
            token = self.current
            if not self.check(TokenType.IDENT):
                raise SQLSyntaxError(
                    "a derived table needs an alias", token.line, token.column
                )
            alias = str(self.advance().value)
            return DerivedTable(select, alias)
        name = str(self.expect(TokenType.IDENT).value)
        alias: Optional[str] = None
        if self.keyword("AS"):
            alias = str(self.expect(TokenType.IDENT).value)
        elif self.check(TokenType.IDENT):
            alias = str(self.advance().value)
        return TableRef(name, alias)

    def parse_conjunction(self) -> list[SqlComparison]:
        atoms = [self.parse_comparison()]
        while True:
            self.reject_unsupported()
            if not self.keyword("AND"):
                break
            atoms.append(self.parse_comparison())
        return atoms

    def parse_comparison(self) -> SqlComparison:
        self.reject_unsupported()
        left = self.parse_expr()
        self.reject_unsupported()
        token = self.current
        if token.type is TokenType.OP and token.value in _COMPARISON_OPS:
            self.advance()
            right = self.parse_expr()
            return SqlComparison(left, str(token.value), right)
        raise SQLSyntaxError(
            f"expected comparison operator, found {token.value!r}",
            token.line,
            token.column,
        )

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def parse_expr(self) -> SqlExpr:
        expr = self.parse_term()
        while self.check(TokenType.OP, "+") or self.check(TokenType.OP, "-"):
            op = str(self.advance().value)
            expr = BinOp(op, expr, self.parse_term())
        return expr

    def parse_term(self) -> SqlExpr:
        expr = self.parse_factor()
        while self.check(TokenType.STAR) or self.check(TokenType.OP, "/"):
            op = "*" if self.current.type is TokenType.STAR else "/"
            self.advance()
            expr = BinOp(op, expr, self.parse_factor())
        return expr

    def parse_factor(self) -> SqlExpr:
        self.reject_unsupported()
        token = self.current

        if token.type is TokenType.NUMBER:
            self.advance()
            return Literal(token.value)
        if token.type is TokenType.STRING:
            self.advance()
            return Literal(str(token.value))
        if self.accept(TokenType.OP, "-"):
            inner = self.parse_factor()
            if isinstance(inner, Literal) and isinstance(inner.value, (int, float)):
                return Literal(-inner.value)
            return BinOp("-", Literal(0), inner)
        if self.accept(TokenType.LPAREN):
            expr = self.parse_expr()
            self.expect(TokenType.RPAREN)
            return expr
        if token.type is TokenType.IDENT:
            name = str(self.advance().value)
            if name.upper() in AGG_NAMES and self.check(TokenType.LPAREN):
                self.advance()
                arg: SqlExpr
                if self.accept(TokenType.STAR):
                    arg = Star()
                else:
                    arg = self.parse_expr()
                self.expect(TokenType.RPAREN)
                return FuncCall(name.upper(), arg)
            if self.check(TokenType.LPAREN):
                raise UnsupportedSQLError(
                    f"function {name} is not supported (aggregates only: "
                    f"MIN, MAX, SUM, COUNT, AVG)"
                )
            if self.accept(TokenType.DOT):
                column = str(self.expect(TokenType.IDENT).value)
                return ColumnRef(column, qualifier=name)
            return ColumnRef(name)
        raise SQLSyntaxError(
            f"unexpected token {token.value!r}", token.line, token.column
        )


def parse_select(text: str) -> SelectStmt:
    """Parse a single SELECT statement."""
    stmt = _Parser(text).parse_statement()
    if not isinstance(stmt, SelectStmt):
        raise SQLSyntaxError("expected a SELECT statement")
    return stmt


def parse_statement(text: str) -> Statement:
    """Parse one statement: SELECT, CREATE VIEW or CREATE TABLE."""
    return _Parser(text).parse_statement()


def parse_script(text: str) -> list[Statement]:
    """Parse a ';'-separated script of statements."""
    parser = _Parser(text)
    out: list[Statement] = []
    while not parser.check(TokenType.EOF):
        out.append(parser.parse_statement_only())
        if not parser.accept(TokenType.SEMI):
            break
    parser.expect(TokenType.EOF)
    return out

"""Token definitions for the single-block SQL dialect."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union


class TokenType(enum.Enum):
    IDENT = "IDENT"          # bare identifier (table, column, alias)
    KEYWORD = "KEYWORD"      # reserved word, upper-cased
    NUMBER = "NUMBER"        # integer or float literal
    STRING = "STRING"        # single-quoted string literal
    OP = "OP"                # comparison or arithmetic operator
    COMMA = "COMMA"
    DOT = "DOT"
    LPAREN = "LPAREN"
    RPAREN = "RPAREN"
    STAR = "STAR"            # '*' (either multiplication or COUNT(*))
    SEMI = "SEMI"
    EOF = "EOF"


#: Reserved words recognized by the lexer (always upper-cased).
KEYWORDS = frozenset(
    {
        "SELECT",
        "DISTINCT",
        "FROM",
        "WHERE",
        "GROUP",
        "BY",
        "GROUPBY",
        "HAVING",
        "AND",
        "AS",
        "CREATE",
        "VIEW",
        "TABLE",
        "PRIMARY",
        "KEY",
        "UNIQUE",
        "OR",
        "NOT",
        "IN",
        "EXISTS",
        "UNION",
        "JOIN",
        "ON",
        "ORDER",
        "LIMIT",
    }
)

#: Aggregate function names (treated as identifiers by the lexer; the
#: parser recognizes them by name).
AGG_NAMES = frozenset({"MIN", "MAX", "SUM", "COUNT", "AVG"})


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: Union[str, int, float]
    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.type.name}({self.value!r})"

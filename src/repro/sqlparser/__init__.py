"""SQL front end: lexer, parser and printer for the paper's query class."""

from .ast import (
    BinOp,
    ColumnRef,
    CreateViewStmt,
    FuncCall,
    Literal,
    SelectItemSyntax,
    SelectStmt,
    SqlComparison,
    SqlExpr,
    Star,
    TableRef,
)
from .lexer import tokenize
from .parser import parse_select, parse_statement
from .printer import print_create_view, print_expr, print_select

__all__ = [
    "BinOp",
    "ColumnRef",
    "CreateViewStmt",
    "FuncCall",
    "Literal",
    "SelectItemSyntax",
    "SelectStmt",
    "SqlComparison",
    "SqlExpr",
    "Star",
    "TableRef",
    "tokenize",
    "parse_select",
    "parse_statement",
    "print_create_view",
    "print_expr",
    "print_select",
]

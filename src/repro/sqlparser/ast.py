"""Syntax tree for the single-block SQL dialect.

This tree mirrors the SQL *text* (qualified names, aliases), before the
paper's unique-column renaming. :mod:`repro.blocks.normalize` converts it
into a :class:`~repro.blocks.query_block.QueryBlock`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union


@dataclass(frozen=True)
class ColumnRef:
    """``name`` or ``qualifier.name``."""

    name: str
    qualifier: Optional[str] = None

    def __str__(self) -> str:
        if self.qualifier:
            return f"{self.qualifier}.{self.name}"
        return self.name


@dataclass(frozen=True)
class Literal:
    value: Union[int, float, str]

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return "'" + self.value.replace("'", "''") + "'"
        return str(self.value)


@dataclass(frozen=True)
class Star:
    """``*`` inside ``COUNT(*)``."""

    def __str__(self) -> str:
        return "*"


@dataclass(frozen=True)
class FuncCall:
    """An aggregate function application."""

    name: str  # upper-cased: MIN/MAX/SUM/COUNT/AVG
    arg: "SqlExpr"

    def __str__(self) -> str:
        return f"{self.name}({self.arg})"


@dataclass(frozen=True)
class BinOp:
    """Arithmetic: ``left op right`` with op in ``+ - * /``."""

    op: str
    left: "SqlExpr"
    right: "SqlExpr"

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


SqlExpr = Union[ColumnRef, Literal, Star, FuncCall, BinOp]


@dataclass(frozen=True)
class SqlComparison:
    """``left op right`` with op in ``< <= = >= > <>``."""

    left: SqlExpr
    op: str
    right: SqlExpr

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class SelectItemSyntax:
    expr: SqlExpr
    alias: Optional[str] = None

    def __str__(self) -> str:
        if self.alias:
            return f"{self.expr} AS {self.alias}"
        return str(self.expr)


@dataclass(frozen=True)
class TableRef:
    name: str
    alias: Optional[str] = None

    def __str__(self) -> str:
        if self.alias:
            return f"{self.name} AS {self.alias}"
        return self.name


@dataclass(frozen=True)
class DerivedTable:
    """A subquery in the FROM clause: ``(SELECT ...) AS alias``.

    The paper's Section 7 nested-query extension: derived tables become
    query-local views during normalization; conjunctive ones can then be
    unfolded back into a single block.
    """

    select: "SelectStmt"
    alias: str

    def __str__(self) -> str:
        from .printer import print_select

        return f"({print_select(self.select)}) AS {self.alias}"


@dataclass(frozen=True)
class SelectStmt:
    """One SELECT-FROM-WHERE-GROUPBY-HAVING block.

    ``from_tables`` entries are :class:`TableRef` or
    :class:`DerivedTable`.
    """

    items: tuple[SelectItemSyntax, ...]
    from_tables: tuple[Union["TableRef", "DerivedTable"], ...]
    where: tuple[SqlComparison, ...] = ()
    group_by: tuple[ColumnRef, ...] = ()
    having: tuple[SqlComparison, ...] = ()
    distinct: bool = False

    def __str__(self) -> str:
        from .printer import print_select

        return print_select(self)


@dataclass(frozen=True)
class CreateTableStmt:
    """``CREATE TABLE name (col type..., PRIMARY KEY (...), UNIQUE (...))``.

    Column types are recorded but uninterpreted (the engine is dynamically
    typed, as is the paper's data model).
    """

    name: str
    columns: tuple[str, ...]
    column_types: tuple[str, ...]
    primary_key: tuple[str, ...] = ()
    uniques: tuple[tuple[str, ...], ...] = ()

    def __str__(self) -> str:
        pieces = []
        for col, typ in zip(self.columns, self.column_types):
            piece = col if not typ else f"{col} {typ}"
            if self.primary_key == (col,):
                piece += " PRIMARY KEY"
            pieces.append(piece)
        if len(self.primary_key) > 1:
            pieces.append("PRIMARY KEY (" + ", ".join(self.primary_key) + ")")
        for unique in self.uniques:
            pieces.append("UNIQUE (" + ", ".join(unique) + ")")
        return f"CREATE TABLE {self.name} (" + ", ".join(pieces) + ")"


@dataclass(frozen=True)
class CreateViewStmt:
    """``CREATE VIEW name [(col, ...)] AS select``."""

    name: str
    columns: tuple[str, ...]
    select: SelectStmt

    def __str__(self) -> str:
        from .printer import print_create_view

        return print_create_view(self)

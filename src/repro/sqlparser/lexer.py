"""Hand-written lexer for the single-block SQL dialect."""

from __future__ import annotations

from ..errors import SQLSyntaxError
from .tokens import KEYWORDS, Token, TokenType

_OPERATOR_STARTS = "<>=!+-/"
_ASCII_DIGITS = "0123456789"


def _is_ascii_digit(ch: str) -> bool:
    # str.isdigit() accepts Unicode digits like '¹' that int() rejects.
    return ch in _ASCII_DIGITS


def tokenize(text: str) -> list[Token]:
    """Tokenize SQL text; raises :class:`SQLSyntaxError` on bad input."""
    tokens: list[Token] = []
    pos = 0
    line = 1
    line_start = 0
    n = len(text)

    def location() -> tuple[int, int]:
        return line, pos - line_start + 1

    while pos < n:
        ch = text[pos]

        if ch == "\n":
            line += 1
            pos += 1
            line_start = pos
            continue
        if ch.isspace():
            pos += 1
            continue
        if ch == "-" and text.startswith("--", pos):
            while pos < n and text[pos] != "\n":
                pos += 1
            continue

        lin, col = location()

        if ch.isalpha() or ch == "_":
            start = pos
            while pos < n and (text[pos].isalnum() or text[pos] in "_$"):
                pos += 1
            word = text[start:pos]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, lin, col))
            else:
                tokens.append(Token(TokenType.IDENT, word, lin, col))
            continue

        if _is_ascii_digit(ch) or (
            ch == "." and pos + 1 < n and _is_ascii_digit(text[pos + 1])
        ):
            start = pos
            seen_dot = False
            while pos < n and (_is_ascii_digit(text[pos]) or text[pos] == "."):
                if text[pos] == ".":
                    if seen_dot:
                        break
                    # Only a decimal point when followed by a digit;
                    # otherwise it is a qualifier dot.
                    if pos + 1 >= n or not _is_ascii_digit(text[pos + 1]):
                        break
                    seen_dot = True
                pos += 1
            raw = text[start:pos]
            value = float(raw) if "." in raw else int(raw)
            tokens.append(Token(TokenType.NUMBER, value, lin, col))
            continue

        if ch == "'":
            pos += 1
            chunks: list[str] = []
            while True:
                if pos >= n:
                    raise SQLSyntaxError("unterminated string literal", lin, col)
                if text[pos] == "'":
                    if pos + 1 < n and text[pos + 1] == "'":
                        chunks.append("'")
                        pos += 2
                        continue
                    pos += 1
                    break
                chunks.append(text[pos])
                pos += 1
            tokens.append(Token(TokenType.STRING, "".join(chunks), lin, col))
            continue

        if ch == '"':
            # Delimited identifier: "name" with "" escaping a quote. Never
            # a keyword, whatever it spells — this is how dialect-emitted
            # SQL round-trips adversarial names (see repro.dialects).
            pos += 1
            parts: list[str] = []
            while True:
                if pos >= n:
                    raise SQLSyntaxError(
                        "unterminated quoted identifier", lin, col
                    )
                if text[pos] == '"':
                    if pos + 1 < n and text[pos + 1] == '"':
                        parts.append('"')
                        pos += 2
                        continue
                    pos += 1
                    break
                if text[pos] == "\n":
                    line += 1
                    line_start = pos + 1
                parts.append(text[pos])
                pos += 1
            tokens.append(Token(TokenType.IDENT, "".join(parts), lin, col))
            continue

        if ch in _OPERATOR_STARTS:
            two = text[pos : pos + 2]
            if two in ("<=", ">=", "<>", "!="):
                op = "<>" if two == "!=" else two
                tokens.append(Token(TokenType.OP, op, lin, col))
                pos += 2
                continue
            if ch == "!":
                raise SQLSyntaxError(f"unexpected character {ch!r}", lin, col)
            tokens.append(Token(TokenType.OP, ch, lin, col))
            pos += 1
            continue

        simple = {
            ",": TokenType.COMMA,
            ".": TokenType.DOT,
            "(": TokenType.LPAREN,
            ")": TokenType.RPAREN,
            "*": TokenType.STAR,
            ";": TokenType.SEMI,
        }
        if ch in simple:
            tokens.append(Token(simple[ch], ch, lin, col))
            pos += 1
            continue

        raise SQLSyntaxError(f"unexpected character {ch!r}", lin, col)

    lin, col = location()
    tokens.append(Token(TokenType.EOF, "", lin, col))
    return tokens

"""Residual conditions: the ``Conds'`` of conditions C3 and C3'.

Condition C3 asks for a conjunction ``Conds'`` such that

    ``Conds(Q)  ≡  φ(Conds(V)) ∧ Conds'``

where ``Conds'`` mentions only columns still *available* after the view
replaces its image tables (columns of non-image tables, plus the images of
the view's SELECT columns — C3' further excludes aggregated view outputs).

The construction restricts the closure of ``Conds(Q)`` to the allowed
vocabulary and checks the equivalence; for equality-only predicates this is
complete (Theorem 3.1), and it is sound in general.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Optional, Sequence

from ..blocks.exprs import columns_in
from ..blocks.terms import Column, Comparison, Constant
from .closure import Closure, closure_cache_enabled, closure_of
from .implication import minimize


def atoms_constants(atoms: Iterable[Comparison]) -> list[Constant]:
    """All constants mentioned in a conjunction, in first-seen order."""
    out: dict[Constant, None] = {}
    for atom in atoms:
        for side in (atom.left, atom.right):
            if isinstance(side, Constant):
                out[side] = None
    return list(out)


#: Memo for :func:`find_residual`. A C3 check is a pure function of the
#: query conditions, the mapped view conditions and the *ordered* allowed
#: vocabulary (the construction's output order follows it), so repeated
#: rewrite traffic — the same query probed against the same views — reuses
#: the entailed-atom enumeration and minimization outright. Honors the
#: closure-cache switch so baseline benchmarks disable it too.
RESIDUAL_CACHE_MAX = 4096
_residual_cache: "OrderedDict[tuple, Optional[tuple[Comparison, ...]]]" = (
    OrderedDict()
)
_residual_hits = 0
_residual_misses = 0


def residual_cache_counts() -> tuple[int, int]:
    """``(hits, misses)`` without dict building (metrics hot path)."""
    return _residual_hits, _residual_misses


def residual_cache_stats() -> dict:
    total = _residual_hits + _residual_misses
    return {
        "hits": _residual_hits,
        "misses": _residual_misses,
        "hit_rate": round(_residual_hits / total, 4) if total else 0.0,
    }


def clear_residual_cache() -> None:
    global _residual_hits, _residual_misses
    _residual_cache.clear()
    _residual_hits = _residual_misses = 0


def find_residual(
    conds_q: Sequence[Comparison],
    mapped_view_conds: Sequence[Comparison],
    allowed_columns: Iterable[Column],
) -> Optional[list[Comparison]]:
    """Compute ``Conds'`` for condition C3/C3', or ``None`` when the
    equivalence cannot be established.

    ``mapped_view_conds`` is ``φ(Conds(V))`` — the view's conditions with
    its columns renamed into query columns by the candidate mapping.
    """
    allowed_terms: list = list(dict.fromkeys(allowed_columns))
    allowed_terms += atoms_constants(conds_q)
    allowed_terms += atoms_constants(mapped_view_conds)

    global _residual_hits, _residual_misses
    caching = closure_cache_enabled()
    if caching:
        key = (
            frozenset(conds_q),
            frozenset(mapped_view_conds),
            tuple(allowed_terms),
        )
        try:
            cached = _residual_cache[key]
        except KeyError:
            _residual_misses += 1
        else:
            _residual_hits += 1
            _residual_cache.move_to_end(key)
            return None if cached is None else list(cached)

    result = _find_residual_uncached(
        conds_q, mapped_view_conds, allowed_terms
    )
    if caching:
        _residual_cache[key] = None if result is None else tuple(result)
        if len(_residual_cache) > RESIDUAL_CACHE_MAX:
            _residual_cache.popitem(last=False)
    return result


def _find_residual_uncached(
    conds_q: Sequence[Comparison],
    mapped_view_conds: Sequence[Comparison],
    allowed_terms: Sequence,
) -> Optional[list[Comparison]]:
    closure_q = closure_of(conds_q)
    if not closure_q.satisfiable:
        # Q is unsatisfiable (returns no groups on any database). Declining
        # to rewrite is sound; callers may special-case this if desired.
        return None

    # First half of C3: Conds(Q) must enforce everything the view enforces,
    # otherwise the view discards tuples that Q needs.
    if not closure_q.entails_all(mapped_view_conds):
        return None

    candidates = closure_q.entailed_atoms_over(allowed_terms)

    # Second half of C3: the view's conditions plus the residual must give
    # back exactly Conds(Q).
    combined = closure_of(tuple(mapped_view_conds) + tuple(candidates))
    if not combined.entails_all(conds_q):
        return None

    return minimize(candidates, context=mapped_view_conds)


def express_over(
    atom: Comparison,
    closure: Closure,
    allowed_columns: frozenset[Column],
) -> Optional[Comparison]:
    """Rewrite an atom onto the allowed vocabulary using entailed equalities.

    Each side that is a disallowed column is replaced by an equal allowed
    column or pinned constant, when one exists.
    """

    def fix(side):
        if not isinstance(side, Column) or side in allowed_columns:
            return side
        for candidate in sorted(closure.equality_class(side), key=str):
            if isinstance(candidate, Column) and candidate in allowed_columns:
                return candidate
        pinned = closure.constant_of(side)
        if pinned is not None:
            return pinned
        return None

    left = fix(atom.left)
    right = fix(atom.right)
    if left is None or right is None:
        return None
    return Comparison(left, atom.op, right)


def rewrite_conjunction(
    atoms: Sequence[Comparison],
    closure: Closure,
    allowed_columns: frozenset[Column],
) -> Optional[list[Comparison]]:
    """Express every atom over the allowed vocabulary, or ``None``."""
    out = []
    for atom in atoms:
        fixed = express_over(atom, closure, allowed_columns)
        if fixed is None:
            return None
        out.append(fixed)
    return out

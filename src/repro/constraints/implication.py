"""Implication and equivalence of predicate conjunctions."""

from __future__ import annotations

from typing import Iterable, Sequence

from ..blocks.terms import Comparison
from .closure import closure_of


def satisfiable(atoms: Iterable[Comparison]) -> bool:
    """Can some database make every atom true simultaneously?"""
    return closure_of(atoms).satisfiable


def implies(premise: Sequence[Comparison], conclusion: Sequence[Comparison]) -> bool:
    """``premise ⊨ conclusion`` (conjunctions of comparison atoms)."""
    return closure_of(premise).entails_all(conclusion)


def equivalent(left: Sequence[Comparison], right: Sequence[Comparison]) -> bool:
    """Mutual implication of two conjunctions."""
    left_closure = closure_of(left)
    right_closure = closure_of(right)
    if not left_closure.satisfiable or not right_closure.satisfiable:
        return left_closure.satisfiable == right_closure.satisfiable
    return left_closure.entails_all(right) and right_closure.entails_all(left)


def minimize(
    atoms: Sequence[Comparison], context: Sequence[Comparison] = ()
) -> list[Comparison]:
    """Drop atoms already implied by ``context`` plus the remaining atoms.

    Greedy and deterministic; the result conjoined with ``context`` is
    equivalent to ``atoms`` conjoined with ``context``.
    """
    kept = list(dict.fromkeys(atoms))
    changed = True
    while changed:
        changed = False
        for atom in sorted(kept, key=str, reverse=True):
            rest = [a for a in kept if a != atom]
            if closure_of(tuple(context) + tuple(rest)).entails(atom):
                kept = rest
                changed = True
    return kept

"""Predicate reasoning: closures, implication, residuals, HAVING motion."""

from .closure import Closure
from .difference import DiffAtom, DifferenceClosure, implies_difference
from .having import normalize_having
from .implication import equivalent, implies, minimize, satisfiable
from .residual import (
    atoms_constants,
    express_over,
    find_residual,
    rewrite_conjunction,
)

__all__ = [
    "Closure",
    "DiffAtom",
    "DifferenceClosure",
    "implies_difference",
    "normalize_having",
    "equivalent",
    "implies",
    "minimize",
    "satisfiable",
    "atoms_constants",
    "express_over",
    "find_residual",
    "rewrite_conjunction",
]

"""Difference constraints: the paper's "+ arithmetic" extension.

Section 2: "Our results can be naturally extended to incorporate more
general built-in predicates, e.g., those involving the arithmetic
operations + and *." This module implements the additive fragment —
conjunctions of atoms

    x op y + c      and      x op c

for columns ``x, y``, numeric constant ``c`` and ``op`` among
``<, <=, =, >=, >`` — via the classic difference-bound-matrix closure:
every atom normalizes to ``x - y ≤ c`` (strict or not) edges over the
columns plus a virtual zero node, and an all-pairs shortest-path run
(tracking strictness) yields satisfiability and entailment.

The plain :class:`~repro.constraints.closure.Closure` stays the engine
behind the paper's conditions (its language matches the paper's); this
module extends the *reasoning* substrate for clients that need bounds
like ``Dep_Hour <= Arr_Hour + 2``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Union

from ..blocks.terms import Column, Op

Number = Union[int, float]

#: The virtual node representing the constant 0; ``x op c`` becomes an
#: edge between ``x`` and this node.
ZERO = Column("$zero")

#: A bound is (value, strict): the constraint ``expr <= value`` (strict
#: False) or ``expr < value`` (strict True).
Bound = tuple[Number, bool]


@dataclass(frozen=True)
class DiffAtom:
    """``left op right + offset`` (right may be None, meaning 0)."""

    left: Column
    op: Op
    right: Optional[Column]
    offset: Number = 0

    def __post_init__(self):
        if self.op is Op.NE:
            raise ValueError(
                "difference-bound reasoning does not support <>"
            )

    def __str__(self) -> str:
        if self.right is None:
            return f"{self.left} {self.op} {self.offset}"
        if self.offset == 0:
            return f"{self.left} {self.op} {self.right}"
        sign = "+" if self.offset >= 0 else "-"
        return f"{self.left} {self.op} {self.right} {sign} {abs(self.offset)}"


def atom(left: str, op: str, right: Optional[str] = None, offset: Number = 0) -> DiffAtom:
    """Convenience constructor: ``atom("x", "<=", "y", 2)`` is x <= y+2."""
    return DiffAtom(
        Column(left),
        Op(op),
        Column(right) if right is not None else None,
        offset,
    )


def _tighter(a: Optional[Bound], b: Bound) -> Bound:
    if a is None:
        return b
    if b[0] < a[0] or (b[0] == a[0] and b[1] and not a[1]):
        return b
    return a


def _add(a: Bound, b: Bound) -> Bound:
    return (a[0] + b[0], a[1] or b[1])


def _le(a: Bound, b: Bound) -> bool:
    """Does the constraint ``<= a`` imply the constraint ``<= b``?"""
    if a[0] < b[0]:
        return True
    return a[0] == b[0] and (a[1] or not b[1])


class DifferenceClosure:
    """Closure of a conjunction of difference constraints."""

    def __init__(self, atoms: Iterable[DiffAtom]):
        self.atoms = tuple(atoms)
        self.satisfiable = True
        nodes: set[Column] = {ZERO}
        edges: dict[tuple[Column, Column], Bound] = {}

        def add_edge(u: Column, v: Column, bound: Bound) -> None:
            # edge u -> v with weight w means  u - v <= w
            edges[(u, v)] = _tighter(edges.get((u, v)), bound)

        for item in self.atoms:
            left = item.left
            right = item.right if item.right is not None else ZERO
            nodes.add(left)
            nodes.add(right)
            c = item.offset
            if item.op in (Op.LE, Op.LT):
                add_edge(left, right, (c, item.op is Op.LT))
            elif item.op in (Op.GE, Op.GT):
                add_edge(right, left, (-c, item.op is Op.GT))
            elif item.op is Op.EQ:
                add_edge(left, right, (c, False))
                add_edge(right, left, (-c, False))

        self._nodes = sorted(nodes, key=lambda n: n.name)
        self._dist: dict[tuple[Column, Column], Bound] = dict(edges)

        # Floyd-Warshall over (value, strict) weights.
        dist = self._dist
        for mid in self._nodes:
            for u in self._nodes:
                first = dist.get((u, mid))
                if first is None:
                    continue
                for v in self._nodes:
                    second = dist.get((mid, v))
                    if second is None:
                        continue
                    candidate = _add(first, second)
                    current = dist.get((u, v))
                    merged = _tighter(current, candidate)
                    if merged != current:
                        dist[(u, v)] = merged

        for node in self._nodes:
            loop = dist.get((node, node))
            if loop is not None and (loop[0] < 0 or (loop[0] == 0 and loop[1])):
                self.satisfiable = False
                break

    # ------------------------------------------------------------------

    def difference_bound(
        self, left: Column, right: Optional[Column] = None
    ) -> Optional[Bound]:
        """The tightest known bound on ``left - right`` (right=None: 0)."""
        target = right if right is not None else ZERO
        if left == target:
            return (0, False)
        return self._dist.get((left, target))

    def upper_bound(self, column: Column) -> Optional[Bound]:
        """Tightest ``column <= c`` / ``< c`` fact, if any."""
        return self.difference_bound(column, None)

    def lower_bound(self, column: Column) -> Optional[Bound]:
        """Tightest ``column >= c`` / ``> c`` fact as (c, strict)."""
        bound = self.difference_bound(ZERO, column)
        if bound is None:
            return None
        return (-bound[0], bound[1])

    def entails(self, goal: DiffAtom) -> bool:
        """Is ``goal`` implied by the conjunction?"""
        if not self.satisfiable:
            return True
        left = goal.left
        right = goal.right if goal.right is not None else ZERO
        c = goal.offset
        if goal.op in (Op.LE, Op.LT):
            have = self.difference_bound(left, right)
            return have is not None and _le(have, (c, goal.op is Op.LT))
        if goal.op in (Op.GE, Op.GT):
            have = self.difference_bound(right, left)
            return have is not None and _le(have, (-c, goal.op is Op.GT))
        # EQ: both directions, non-strict.
        forward = self.difference_bound(left, right)
        backward = self.difference_bound(right, left)
        return (
            forward is not None
            and backward is not None
            and _le(forward, (c, False))
            and _le(backward, (-c, False))
        )

    def entails_all(self, goals: Iterable[DiffAtom]) -> bool:
        return all(self.entails(g) for g in goals)


def implies_difference(
    premises: Iterable[DiffAtom], conclusion: Iterable[DiffAtom]
) -> bool:
    """Conjunction-level implication over difference constraints."""
    return DifferenceClosure(premises).entails_all(conclusion)

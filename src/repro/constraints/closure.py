"""Closure of conjunctions of comparison predicates.

The paper's usability conditions are checked "by comparing the closures of
``Conds(Q)`` and ``φ(Conds(V))``" (Section 3.1, footnote 2): for
conjunctions of ``=, <, <=, >=, >`` (we add ``<>``) over columns and
constants, the closure — the set of all entailed atomic predicates — has
size polynomial in the input and is computable in polynomial time.

The construction:

1. union-find over the terms merges equality classes (``=`` atoms);
2. order atoms become strict/non-strict edges between class
   representatives, plus the total order over comparable constants;
3. strongly connected components of the order graph collapse into further
   equalities (``A <= B <= A`` implies ``A = B``); a strict edge inside a
   component means unsatisfiability;
4. transitive reachability (tracking whether any edge on the path is
   strict) decides entailed inequalities; per-class constant bounds decide
   comparisons against constants that do not appear in the input.

Terms are columns and constants; HAVING atoms are supported by treating
aggregate expressions as opaque terms, which is exactly the paper's
treatment of "aggregation columns" in GConds.
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator, Optional, Sequence

from ..blocks.terms import Column, Comparison, Constant, Op

#: Anything usable as a closure node. Columns, constants and (for HAVING
#: reasoning) aggregate expressions are all frozen/hashable.
Node = Hashable


def _comparable(a: Constant, b: Constant) -> bool:
    """Constants are mutually ordered only within a type family."""
    numeric = (int, float)
    if isinstance(a.value, numeric) and isinstance(b.value, numeric):
        return True
    return isinstance(a.value, str) and isinstance(b.value, str)


class Closure:
    """The deductive closure of a conjunction of comparison atoms."""

    def __init__(self, atoms: Iterable[Comparison]):
        self.atoms: tuple[Comparison, ...] = tuple(atoms)
        self.satisfiable = True
        self._parent: dict[Node, Node] = {}
        self._edges: set[tuple[Node, Node, bool]] = set()  # (u, v, strict)
        self._ne: set[frozenset] = set()
        self._reach: dict[Node, dict[Node, bool]] = {}
        self._class_const: dict[Node, Constant] = {}
        self._build()

    # ------------------------------------------------------------------
    # Union-find
    # ------------------------------------------------------------------

    def _find(self, node: Node) -> Node:
        parent = self._parent
        if node not in parent:
            parent[node] = node
            return node
        root = node
        while parent[root] != root:
            root = parent[root]
        while parent[node] != root:
            parent[node], node = root, parent[node]
        return root

    def _union(self, a: Node, b: Node) -> None:
        ra, rb = self._find(a), self._find(b)
        if ra != rb:
            self._parent[ra] = rb

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _build(self) -> None:
        raw_edges: list[tuple[Node, Node, bool]] = []
        ne_pairs: list[tuple[Node, Node]] = []
        constants: set[Constant] = set()

        for atom in self.atoms:
            left, right = atom.left, atom.right
            for side in (left, right):
                self._find(side)
                if isinstance(side, Constant):
                    constants.add(side)
            op = atom.op
            if op is Op.EQ:
                self._union(left, right)
            elif op is Op.NE:
                ne_pairs.append((left, right))
            elif op in (Op.LT, Op.LE):
                raw_edges.append((left, right, op is Op.LT))
            else:  # GE, GT
                raw_edges.append((right, left, op is Op.GT))

        # The total order among comparable constants.
        const_list = sorted(constants, key=lambda c: (str(type(c.value)), str(c.value)))
        for i, c1 in enumerate(const_list):
            for c2 in const_list[i + 1 :]:
                if not _comparable(c1, c2):
                    continue
                if c1.value == c2.value:
                    self._union(c1, c2)
                elif c1.value < c2.value:
                    raw_edges.append((c1, c2, True))
                else:
                    raw_edges.append((c2, c1, True))

        # Collapse SCCs of the order graph until the DAG is stable.
        while True:
            edges = {
                (self._find(u), self._find(v), strict)
                for (u, v, strict) in raw_edges
            }
            edges = {(u, v, s) for (u, v, s) in edges if u != v or s}
            for u, v, strict in edges:
                if u == v and strict:
                    self.satisfiable = False
                    return
            merged = self._merge_cycles(edges)
            if not self.satisfiable:
                return
            if not merged:
                self._edges = edges
                break

        # Distinct constants in one class are a contradiction.
        for const in constants:
            rep = self._find(const)
            known = self._class_const.get(rep)
            if known is not None and known.value != const.value:
                self.satisfiable = False
                return
            self._class_const[rep] = const

        # Disequalities, after all merging.
        for left, right in ne_pairs:
            u, v = self._find(left), self._find(right)
            if u == v:
                self.satisfiable = False
                return
            self._ne.add(frozenset((u, v)))

        self._compute_reachability()
        if not self.satisfiable:
            return

        # x <= y with both classes pinned to contradictory constants is
        # already handled by constant-order edges; what remains is NE
        # against an equal pair via bounds: x != y entailed equal -> unsat
        for pair in self._ne:
            if len(pair) == 1:
                self.satisfiable = False
                return

    def _merge_cycles(self, edges: set[tuple[Node, Node, bool]]) -> bool:
        """Union every (non-strict) cycle; flag strict cycles unsat.

        Returns True when something merged (caller loops to a fixpoint).
        """
        adjacency: dict[Node, list[tuple[Node, bool]]] = {}
        nodes: set[Node] = set()
        for u, v, strict in edges:
            adjacency.setdefault(u, []).append((v, strict))
            nodes.add(u)
            nodes.add(v)

        index: dict[Node, int] = {}
        low: dict[Node, int] = {}
        on_stack: set[Node] = set()
        stack: list[Node] = []
        components: list[list[Node]] = []
        counter = [0]

        def strong_connect(root: Node) -> None:
            # Iterative Tarjan (recursion depth can exceed limits on long
            # chains of predicates).
            work = [(root, iter(adjacency.get(root, ())))]
            index[root] = low[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, it = work[-1]
                advanced = False
                for succ, _strict in it:
                    if succ not in index:
                        index[succ] = low[succ] = counter[0]
                        counter[0] += 1
                        stack.append(succ)
                        on_stack.add(succ)
                        work.append((succ, iter(adjacency.get(succ, ()))))
                        advanced = True
                        break
                    if succ in on_stack:
                        low[node] = min(low[node], index[succ])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index[node]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    components.append(component)

        for node in nodes:
            if node not in index:
                strong_connect(node)

        merged = False
        for component in components:
            if len(component) <= 1:
                continue
            members = set(component)
            for u, v, strict in edges:
                if strict and u in members and v in members:
                    self.satisfiable = False
                    return False
            first = component[0]
            for other in component[1:]:
                self._union(first, other)
            merged = True
        return merged

    def _compute_reachability(self) -> None:
        adjacency: dict[Node, list[tuple[Node, bool]]] = {}
        for u, v, strict in self._edges:
            adjacency.setdefault(u, []).append((v, strict))
        for start in list(adjacency):
            # BFS recording the best (strictest) path label to each node.
            best: dict[Node, bool] = {}
            frontier: list[tuple[Node, bool]] = [(start, False)]
            while frontier:
                node, strict = frontier.pop()
                for succ, edge_strict in adjacency.get(node, ()):  # noqa: B023
                    label = strict or edge_strict
                    if succ not in best or (label and not best[succ]):
                        best[succ] = label
                        frontier.append((succ, label))
            if best.get(start):
                self.satisfiable = False
            best.pop(start, None)
            self._reach[start] = best

    # ------------------------------------------------------------------
    # Low-level relations between class representatives
    # ------------------------------------------------------------------

    def _le(self, u: Node, v: Node) -> bool:
        if u == v:
            return True
        return v in self._reach.get(u, ())

    def _lt(self, u: Node, v: Node) -> bool:
        reach = self._reach.get(u, {})
        if reach.get(v):
            return True
        if self._le(u, v) and self._ne_reps(u, v):
            return True
        return self._bounds_separate(u, v)

    def _ne_reps(self, u: Node, v: Node) -> bool:
        if u == v:
            return False
        if frozenset((u, v)) in self._ne:
            return True
        cu, cv = self._class_const.get(u), self._class_const.get(v)
        if cu is not None and cv is not None and cu.value != cv.value:
            return True
        if self._reach.get(u, {}).get(v) or self._reach.get(v, {}).get(u):
            return True
        return self._bounds_separate(u, v) or self._bounds_separate(v, u)

    def _bounds_separate(self, u: Node, v: Node) -> bool:
        """True when upper(u) < lower(v) proves u < v via constants."""
        upper = self.upper_bound_rep(u)
        lower = self.lower_bound_rep(v)
        if upper is None or lower is None:
            return False
        uv, us = upper
        lv, ls = lower
        try:
            if uv < lv:
                return True
            return uv == lv and (us or ls)
        except TypeError:
            return False

    # ------------------------------------------------------------------
    # Bounds
    # ------------------------------------------------------------------

    def lower_bound_rep(self, rep: Node) -> Optional[tuple[object, bool]]:
        """Best known constant lower bound ``(value, strict)`` of a class."""
        best: Optional[tuple[object, bool]] = None
        const = self._class_const.get(rep)
        if const is not None:
            best = (const.value, False)
        for crep, constant in self._class_const.items():
            if crep == rep:
                continue
            strict = self._reach.get(crep, {}).get(rep)
            if strict is None:
                continue
            candidate = (constant.value, bool(strict))
            best = _max_bound(best, candidate)
        return best

    def upper_bound_rep(self, rep: Node) -> Optional[tuple[object, bool]]:
        """Best known constant upper bound ``(value, strict)`` of a class."""
        best: Optional[tuple[object, bool]] = None
        const = self._class_const.get(rep)
        if const is not None:
            best = (const.value, False)
        for crep, constant in self._class_const.items():
            if crep == rep:
                continue
            strict = self._reach.get(rep, {}).get(crep)
            if strict is None:
                continue
            candidate = (constant.value, bool(strict))
            best = _min_bound(best, candidate)
        return best

    def bounds(self, term: Node) -> tuple[Optional[tuple], Optional[tuple]]:
        """(lower, upper) constant bounds of a term, each (value, strict)."""
        # Don't use _find directly: it would register an unknown term in
        # the union-find, mutating an instance that may be shared through
        # the closure cache.
        rep = self._find(term) if term in self._parent else term
        return self.lower_bound_rep(rep), self.upper_bound_rep(rep)

    # ------------------------------------------------------------------
    # Entailment
    # ------------------------------------------------------------------

    def entails(self, atom: Comparison) -> bool:
        """Does this conjunction entail ``atom``?

        Sound and (for atoms over the input's terms and constants) complete
        for the equality/order language; an unsatisfiable conjunction
        entails everything.
        """
        if not self.satisfiable:
            return True
        norm = atom.normalized()
        left, op, right = norm.left, norm.op, norm.right

        if isinstance(left, Constant) and isinstance(right, Constant):
            if not _comparable(left, right):
                return op is Op.NE and left.value != right.value
            return op.holds(left.value, right.value)

        known_left = left in self._parent
        known_right = right in self._parent
        if known_left and known_right:
            u, v = self._find(left), self._find(right)
            if op is Op.EQ:
                return u == v
            if op is Op.NE:
                return self._ne_reps(u, v)
            if op is Op.LE:
                return self._le(u, v) or self._lt(u, v)
            return self._lt(u, v)

        # One side is a constant the input never mentions: decide by bounds.
        if isinstance(right, Constant) and known_left:
            return self._entails_vs_const(self._find(left), op, right, flip=False)
        if isinstance(left, Constant) and known_right:
            return self._entails_vs_const(self._find(right), op, left, flip=True)

        # An unknown term: only reflexive facts hold.
        if left == right:
            return op in (Op.EQ, Op.LE)
        return False

    def _entails_vs_const(
        self, rep: Node, op: Op, const: Constant, flip: bool
    ) -> bool:
        """Decide ``class(rep) op const`` (or flipped) using bounds."""
        if flip:
            op = op.flipped
        lower, upper = self.lower_bound_rep(rep), self.upper_bound_rep(rep)
        pinned = self._class_const.get(rep)
        value = const.value
        try:
            if op is Op.EQ:
                return pinned is not None and pinned.value == value
            if op is Op.NE:
                if pinned is not None and pinned.value != value:
                    return True
                if lower is not None and _bound_gt(lower, value):
                    return True
                return upper is not None and _bound_lt(upper, value)
            if op is Op.LE:
                return upper is not None and (
                    upper[0] < value or (upper[0] == value)
                )
            if op is Op.LT:
                return upper is not None and _bound_lt(upper, value)
            if op is Op.GE:
                return lower is not None and (
                    lower[0] > value or (lower[0] == value)
                )
            return lower is not None and _bound_gt(lower, value)
        except TypeError:
            return False

    def entails_all(self, atoms: Iterable[Comparison]) -> bool:
        return all(self.entails(atom) for atom in atoms)

    # ------------------------------------------------------------------
    # Queries used by the rewriting conditions
    # ------------------------------------------------------------------

    def equal(self, a: Node, b: Node) -> bool:
        """Entailed equality of two terms (condition C2's test)."""
        if not self.satisfiable:
            return True
        if a == b:
            return True
        if a not in self._parent or b not in self._parent:
            return False
        return self._find(a) == self._find(b)

    def equality_class(self, term: Node) -> frozenset:
        """All input terms entailed equal to ``term``."""
        if term not in self._parent:
            return frozenset((term,))
        rep = self._find(term)
        return frozenset(
            t for t in self._parent if self._find(t) == rep
        )

    def constant_of(self, term: Node) -> Optional[Constant]:
        """The constant a term is pinned to, when entailed."""
        if term not in self._parent:
            return term if isinstance(term, Constant) else None
        return self._class_const.get(self._find(term))

    def terms(self) -> frozenset:
        return frozenset(self._parent)

    def entailed_atoms_over(self, allowed: Sequence[Node]) -> list[Comparison]:
        """All entailed atoms whose sides come from ``allowed``.

        This is the closure restricted to a term vocabulary — the candidate
        ``Conds'`` of condition C3 (see :mod:`repro.constraints.residual`).
        Redundant weaker atoms (``<=`` when ``<`` holds, ``<>`` when ``<``
        holds) are skipped.
        """
        out: list[Comparison] = []
        items = list(dict.fromkeys(allowed))
        for i, a in enumerate(items):
            for b in items[i + 1 :]:
                if isinstance(a, Constant) and isinstance(b, Constant):
                    continue  # tautological or absurd; never needed
                if self.entails(Comparison(a, Op.EQ, b)):
                    out.append(Comparison(a, Op.EQ, b))
                    continue
                if self.entails(Comparison(a, Op.LT, b)):
                    out.append(Comparison(a, Op.LT, b))
                elif self.entails(Comparison(b, Op.LT, a)):
                    out.append(Comparison(b, Op.LT, a))
                else:
                    if self.entails(Comparison(a, Op.LE, b)):
                        out.append(Comparison(a, Op.LE, b))
                    if self.entails(Comparison(b, Op.LE, a)):
                        out.append(Comparison(b, Op.LE, a))
                    if self.entails(Comparison(a, Op.NE, b)):
                        out.append(Comparison(a, Op.NE, b))
        return out

    def __len__(self) -> int:
        """Number of entailed atoms over the input terms (footnote 2)."""
        return len(self.entailed_atoms_over(sorted(self.terms(), key=str)))


def _max_bound(a, b):
    if a is None:
        return b
    try:
        if b[0] > a[0] or (b[0] == a[0] and b[1] and not a[1]):
            return b
    except TypeError:
        return a
    return a


def _min_bound(a, b):
    if a is None:
        return b
    try:
        if b[0] < a[0] or (b[0] == a[0] and b[1] and not a[1]):
            return b
    except TypeError:
        return a
    return a


def _bound_lt(bound, value) -> bool:
    """upper bound (v, strict) proves term < value."""
    v, strict = bound
    return v < value or (v == value and strict)


def _bound_gt(bound, value) -> bool:
    """lower bound (v, strict) proves term > value."""
    v, strict = bound
    return v > value or (v == value and strict)


# ----------------------------------------------------------------------
# Closure cache
# ----------------------------------------------------------------------
#
# The rewriting conditions rebuild the closure of the same conjunction
# over and over: every candidate mapping of every view re-checks C2/C3
# against Closure(Conds(Q)), and repeated rewrite traffic (the semantic
# cache) re-derives identical closures per lookup. A conjunction's
# closure depends only on the *set* of its atoms, so a bounded LRU keyed
# on that frozen set lets all of them share one instance. Closure objects
# are immutable after construction (union-find path compression aside),
# which makes the sharing safe.


@dataclass
class ClosureCacheStats:
    """Hit/miss accounting for :func:`closure_of` (benchmark surface)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    bypasses: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "bypasses": self.bypasses,
            "hit_rate": round(self.hit_rate, 4),
        }


CLOSURE_CACHE_MAX = 4096

_closure_cache: "OrderedDict[frozenset, Closure]" = OrderedDict()
_closure_cache_enabled = True
_closure_stats = ClosureCacheStats()


def closure_of(atoms: Iterable[Comparison]) -> Closure:
    """A (possibly shared) :class:`Closure` of the given conjunction.

    Drop-in replacement for ``Closure(atoms)`` on hot paths: entailment
    is order- and duplicate-insensitive, so conjunctions with the same
    atom set share one cached instance.
    """
    atom_tuple = tuple(atoms)
    if not _closure_cache_enabled:
        _closure_stats.bypasses += 1
        return Closure(atom_tuple)
    key = frozenset(atom_tuple)
    cached = _closure_cache.get(key)
    if cached is not None:
        _closure_stats.hits += 1
        _closure_cache.move_to_end(key)
        return cached
    _closure_stats.misses += 1
    closure = Closure(atom_tuple)
    _closure_cache[key] = closure
    if len(_closure_cache) > CLOSURE_CACHE_MAX:
        _closure_cache.popitem(last=False)
        _closure_stats.evictions += 1
    return closure


def closure_cache_enabled() -> bool:
    """Whether :func:`closure_of` currently caches (see
    :func:`closure_cache_disabled`). Derived caches — e.g. the residual
    memo in :mod:`repro.constraints.residual` — key off the same switch
    so baselines disable all entailment memoization at once."""
    return _closure_cache_enabled


def closure_cache_stats() -> ClosureCacheStats:
    """The live hit/miss counters (reset by :func:`clear_closure_cache`)."""
    return _closure_stats


def clear_closure_cache() -> None:
    """Empty the cache and zero its counters."""
    _closure_cache.clear()
    _closure_stats.hits = 0
    _closure_stats.misses = 0
    _closure_stats.evictions = 0
    _closure_stats.bypasses = 0


@contextmanager
def closure_cache_disabled() -> Iterator[None]:
    """Run with :func:`closure_of` bypassing the cache (A/B baselines)."""
    global _closure_cache_enabled
    previous = _closure_cache_enabled
    _closure_cache_enabled = False
    try:
        yield
    finally:
        _closure_cache_enabled = previous

"""HAVING → WHERE predicate motion (paper Section 3.3).

Before checking usability, query and view are put into a *normal form* in
which every condition that can soundly live in the WHERE clause has been
moved there, leaving the HAVING clause with only genuinely group-dependent
predicates. The paper cites predicate move-around machinery [LMS94,
RSSS95, LMS96] and states two rules, both implemented here:

rule A
    An atom whose columns are all grouping columns (or constants) moves to
    WHERE: the atom is constant within a group, so filtering groups equals
    filtering their rows.

rule B
    ``MAX(B) > c`` (or ``>=``) — equivalently ``MIN(B) < c`` / ``<=`` —
    moves as ``B > c`` when that aggregate is the *only* aggregate
    expression in the whole query: groups whose maximum fails the bound
    vanish either way, and surviving groups keep their maximum.

Both rules require a non-empty GROUP BY: without one, SQL emits a row even
for an empty core table, and moving the filter into WHERE would change
that row instead of suppressing it.
"""

from __future__ import annotations

from ..blocks.exprs import AggFunc, Aggregate
from ..blocks.query_block import QueryBlock
from ..blocks.terms import Column, Comparison, Constant, Op


def _is_where_ready(atom: Comparison, group_cols: frozenset[Column]) -> bool:
    """Rule A test: both sides grouping columns or constants."""
    for side in (atom.left, atom.right):
        if isinstance(side, Column):
            if side not in group_cols:
                return False
        elif not isinstance(side, Constant):
            return False
    return True


def _movable_extremum(atom: Comparison, query: QueryBlock):
    """Rule B test; returns the moved WHERE atom or ``None``.

    The atom must be ``AGG(B) op c`` with AGG/op in {MAX with >, >=} or
    {MIN with <, <=}, ``B`` a column, ``c`` a constant, and ``AGG(B)`` the
    only aggregate expression anywhere in the query.
    """
    left, op, right = atom.left, atom.op, atom.right
    if isinstance(right, Aggregate) and isinstance(left, Constant):
        left, op, right = right, op.flipped, left
    if not (isinstance(left, Aggregate) and isinstance(right, Constant)):
        return None
    if not isinstance(left.arg, Column):
        return None
    movable = (left.func is AggFunc.MAX and op in (Op.GT, Op.GE)) or (
        left.func is AggFunc.MIN and op in (Op.LT, Op.LE)
    )
    if not movable:
        return None
    if any(agg != left for agg in query.all_aggregates()):
        return None
    return Comparison(left.arg, op, right)


def normalize_having(query: QueryBlock) -> QueryBlock:
    """Move the maximal sound set of HAVING atoms into WHERE.

    Iterates because rule B's "only aggregate" premise can become true
    after other atoms move out of HAVING.
    """
    if not query.having or not query.group_by:
        return query

    block = query
    group_cols = frozenset(block.group_by)
    changed = True
    while changed and block.having:
        changed = False
        for atom in block.having:
            if _is_where_ready(atom, group_cols):
                moved = Comparison(atom.left, atom.op, atom.right)
            else:
                trial = block.with_(
                    having=tuple(a for a in block.having if a is not atom)
                )
                moved = _movable_extremum(atom, trial)
            if moved is not None:
                block = block.with_(
                    where=block.where + (moved,),
                    having=tuple(a for a in block.having if a is not atom),
                )
                changed = True
                break
    return block

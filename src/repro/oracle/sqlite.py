"""Execute QueryBlocks on stdlib ``sqlite3`` — the independent backend.

The compiler is deliberately thin: :func:`repro.blocks.to_sql.block_to_ast`
already lowers the normalized unique-column form back to standard
``alias.column`` SQL, and the :data:`~repro.sqlparser.printer.SQLITE`
dialect handles the two genuine SQLite quirks (quoted identifiers,
REAL-casting division). Everything else — NULL comparisons, grouping,
HAVING, DISTINCT, aggregate NULL-skipping — is *supposed* to agree with
the repro engine; disagreements are exactly what the oracle exists to
surface.

Views are **materialized** into tables (``CREATE TABLE … ; INSERT …
SELECT``) from SQLite's own evaluation of the view body, never from
engine-computed rows, so the two backends stay fully independent.
Auxiliary views of a rewriting (the ``Va`` of steps S4'/S5') are created
as real SQLite views with an explicit column list, which needs
SQLite >= 3.9; older libraries raise :class:`OracleUnsupported`.
"""

from __future__ import annotations

import sqlite3
from typing import Iterable, Sequence

from ..blocks.query_block import QueryBlock, ViewDef
from ..blocks.to_sql import block_to_sql
from ..errors import OracleUnsupported
from ..sqlparser.printer import SQLITE

#: CREATE VIEW name (columns) AS … needs SQLite 3.9.0 (2015-10).
_VIEW_COLUMNS_MIN_VERSION = (3, 9, 0)


def _version() -> tuple[int, ...]:
    return tuple(int(part) for part in sqlite3.sqlite_version.split("."))


def compile_block(block: QueryBlock) -> str:
    """Lower a QueryBlock to SQLite-dialect SQL text."""
    return block_to_sql(block, dialect=SQLITE)


def _quote(name: str) -> str:
    return '"' + name.replace('"', '""') + '"'


class SQLiteBackend:
    """One in-memory SQLite database mirroring a catalog instance."""

    def __init__(self) -> None:
        self.connection = sqlite3.connect(":memory:")
        self._local_views: list[str] = []

    def close(self) -> None:
        self.connection.close()

    def __enter__(self) -> "SQLiteBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------

    def create_table(self, name: str, columns: Sequence[str]) -> None:
        cols = ", ".join(_quote(c) for c in columns)
        self.connection.execute(f"CREATE TABLE {_quote(name)} ({cols})")

    def load_rows(self, name: str, rows: Iterable[Sequence]) -> None:
        rows = [tuple(r) for r in rows]
        if not rows:
            return
        placeholders = ", ".join("?" for _ in rows[0])
        self.connection.executemany(
            f"INSERT INTO {_quote(name)} VALUES ({placeholders})", rows
        )

    def materialize_view(self, view: ViewDef) -> list[tuple]:
        """Evaluate a view with SQLite itself and store it as a table.

        Returns the materialized rows (for cross-checking against the
        engine's own materialization).
        """
        self.create_table(view.name, view.output_names)
        select = compile_block(view.block)
        self.connection.execute(
            f"INSERT INTO {_quote(view.name)}\n{select}"
        )
        return self.fetch_table(view.name)

    def create_local_view(self, view: ViewDef) -> None:
        """Create an auxiliary (rewriting-local) view as a SQLite VIEW."""
        if _version() < _VIEW_COLUMNS_MIN_VERSION:
            raise OracleUnsupported(
                "CREATE VIEW with a column list needs SQLite >= 3.9 "
                f"(found {sqlite3.sqlite_version})"
            )
        cols = ", ".join(_quote(c) for c in view.output_names)
        select = compile_block(view.block)
        self.connection.execute(
            f"CREATE VIEW {_quote(view.name)} ({cols}) AS\n{select}"
        )
        self._local_views.append(view.name)

    def drop_local_views(self) -> None:
        while self._local_views:
            name = self._local_views.pop()
            self.connection.execute(f"DROP VIEW IF EXISTS {_quote(name)}")

    # ------------------------------------------------------------------

    def execute_block(self, block: QueryBlock) -> list[tuple]:
        """Run a compiled QueryBlock and return its rows."""
        sql = compile_block(block)
        try:
            cursor = self.connection.execute(sql)
        except sqlite3.Error as error:  # pragma: no cover - surfaced upstream
            raise OracleUnsupported(
                f"sqlite rejected compiled SQL ({error}):\n{sql}"
            ) from error
        return [tuple(row) for row in cursor.fetchall()]

    def fetch_table(self, name: str) -> list[tuple]:
        cursor = self.connection.execute(f"SELECT * FROM {_quote(name)}")
        return [tuple(row) for row in cursor.fetchall()]

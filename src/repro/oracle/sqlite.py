"""Back-compat home of the SQLite backend (see :mod:`repro.oracle.backends`).

The original cross-oracle had exactly one backend, defined here. The
multi-dialect emitter promoted that printer into :mod:`repro.dialects`
and the backend into the generic DB-API machinery of
:mod:`repro.oracle.backends`; this module keeps the historical import
surface (``SQLiteBackend``, ``compile_block``) alive for callers and
docs that predate the registry.
"""

from __future__ import annotations

from ..blocks.query_block import QueryBlock
from ..blocks.to_sql import block_to_sql
from ..dialects import SQLITE
from .backends import (
    _SQLITE_VIEW_COLUMNS_MIN_VERSION as _VIEW_COLUMNS_MIN_VERSION,
)
from .backends import SQLiteBackend

__all__ = ["SQLiteBackend", "compile_block"]


def compile_block(block: QueryBlock) -> str:
    """Lower a QueryBlock to SQLite-dialect SQL text."""
    return block_to_sql(block, dialect=SQLITE)

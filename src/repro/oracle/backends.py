"""Execution backends: one live DBMS per installed driver.

:class:`DBAPIBackend` runs compiled QueryBlocks on any DB-API 2.0
connection whose engine one of the :mod:`repro.dialects` describes; the
cross-checker (:mod:`repro.oracle.crosscheck`) treats every backend as
one more axis of the N-way oracle (row engine = columnar engine =
SQLite = DuckDB = ...).

SQLite is always available (stdlib ``sqlite3``); DuckDB joins the
registry when the ``duckdb`` package is importable. Postgres has a
dialect (for emission) but no in-process backend — there is no server
to connect to in tests or CI — so it deliberately does not appear here.

Views are **materialized** into tables (``CREATE TABLE …; INSERT …
SELECT``) from the backend's own evaluation of the view body, never from
engine-computed rows, so each backend stays fully independent of the
repro engine. Auxiliary views of a rewriting (the ``Va`` of steps
S4'/S5') are created as real views with an explicit column list.
"""

from __future__ import annotations

import sqlite3
from typing import Callable, Iterable, Optional, Sequence

from ..blocks.query_block import QueryBlock, ViewDef
from ..blocks.to_sql import block_to_sql
from ..dialects import DUCKDB, SQLITE, Dialect
from ..errors import OracleUnsupported

#: CREATE VIEW name (columns) AS … needs SQLite 3.9.0 (2015-10).
_SQLITE_VIEW_COLUMNS_MIN_VERSION = (3, 9, 0)


class DBAPIBackend:
    """One in-memory database mirroring a catalog instance.

    Subclasses bind a concrete driver: they provide the connection, the
    emission :class:`~repro.dialects.Dialect` and the driver's error
    type(s). Everything else — DDL, loading, materialization, block
    execution — is the shared DB-API choreography below.
    """

    #: Registry key (matches the dialect name).
    name: str = "dbapi"
    #: Dialect used both for DDL identifiers and compiled SELECTs.
    dialect: Dialect
    #: Exception classes the driver raises for rejected SQL.
    error_types: tuple = ()
    #: DB-API parameter placeholder (qmark for sqlite3 and duckdb).
    placeholder: str = "?"

    def __init__(self, connection) -> None:
        self.connection = connection
        self._local_views: list[str] = []

    def close(self) -> None:
        self.connection.close()

    def __enter__(self) -> "DBAPIBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------

    def compile_block(self, block: QueryBlock) -> str:
        """Lower a QueryBlock to this backend's SQL text."""
        return block_to_sql(block, dialect=self.dialect)

    def _quote(self, name: str) -> str:
        return self.dialect.quote_ident(name)

    def _execute(self, sql: str, parameters: Optional[Sequence] = None):
        cursor = self.connection.cursor()
        if parameters is None:
            cursor.execute(sql)
        else:
            cursor.execute(sql, parameters)
        return cursor

    # ------------------------------------------------------------------

    def create_table(self, name: str, columns: Sequence[str]) -> None:
        cols = ", ".join(self._quote(c) for c in columns)
        self._execute(f"CREATE TABLE {self._quote(name)} ({cols})")

    def load_rows(self, name: str, rows: Iterable[Sequence]) -> None:
        rows = [tuple(r) for r in rows]
        if not rows:
            return
        placeholders = ", ".join(self.placeholder for _ in rows[0])
        cursor = self.connection.cursor()
        cursor.executemany(
            f"INSERT INTO {self._quote(name)} VALUES ({placeholders})",
            rows,
        )

    def materialize_view(self, view: ViewDef) -> list[tuple]:
        """Evaluate a view with the backend itself and store it as a table.

        Returns the materialized rows (for cross-checking against the
        engine's own materialization).
        """
        self.create_table(view.name, view.output_names)
        select = self.compile_block(view.block)
        self._execute(f"INSERT INTO {self._quote(view.name)}\n{select}")
        return self.fetch_table(view.name)

    def create_local_view(self, view: ViewDef) -> None:
        """Create an auxiliary (rewriting-local) view as a real view."""
        cols = ", ".join(self._quote(c) for c in view.output_names)
        select = self.compile_block(view.block)
        self._execute(
            f"CREATE VIEW {self._quote(view.name)} ({cols}) AS\n{select}"
        )
        self._local_views.append(view.name)

    def drop_local_views(self) -> None:
        while self._local_views:
            name = self._local_views.pop()
            self._execute(f"DROP VIEW IF EXISTS {self._quote(name)}")

    # ------------------------------------------------------------------

    def execute_block(self, block: QueryBlock) -> list[tuple]:
        """Run a compiled QueryBlock and return its rows."""
        sql = self.compile_block(block)
        try:
            cursor = self._execute(sql)
        except self.error_types as error:  # pragma: no cover - upstream
            raise OracleUnsupported(
                f"{self.name} rejected compiled SQL ({error}):\n{sql}"
            ) from error
        return [tuple(row) for row in cursor.fetchall()]

    def fetch_table(self, name: str) -> list[tuple]:
        cursor = self._execute(f"SELECT * FROM {self._quote(name)}")
        return [tuple(row) for row in cursor.fetchall()]


class SQLiteBackend(DBAPIBackend):
    """The always-available backend: stdlib ``sqlite3`` in memory."""

    name = "sqlite"
    dialect = SQLITE
    error_types = (sqlite3.Error,)

    def __init__(self, connection: Optional[sqlite3.Connection] = None):
        super().__init__(connection or sqlite3.connect(":memory:"))

    def create_local_view(self, view: ViewDef) -> None:
        version = tuple(
            int(part) for part in sqlite3.sqlite_version.split(".")
        )
        if version < _SQLITE_VIEW_COLUMNS_MIN_VERSION:
            raise OracleUnsupported(
                "CREATE VIEW with a column list needs SQLite >= 3.9 "
                f"(found {sqlite3.sqlite_version})"
            )
        super().create_local_view(view)


class DuckDBBackend(DBAPIBackend):
    """DuckDB in memory; registered only when the driver is installed."""

    name = "duckdb"
    dialect = DUCKDB

    def __init__(self, connection=None):
        duckdb = _import_duckdb()
        self.error_types = (duckdb.Error,)
        super().__init__(connection or duckdb.connect(":memory:"))


def _import_duckdb():
    try:
        import duckdb
    except ImportError:
        raise OracleUnsupported(
            "the duckdb package is not installed; "
            "`pip install duckdb` enables the DuckDB oracle backend"
        ) from None
    return duckdb


#: Every backend the checker can be asked for, installed or not.
BACKEND_NAMES: tuple[str, ...] = ("sqlite", "duckdb")

_FACTORIES: dict[str, Callable[[], DBAPIBackend]] = {
    "sqlite": SQLiteBackend,
    "duckdb": DuckDBBackend,
}


def backend_available(name: str) -> bool:
    """Whether ``create_backend(name)`` would succeed right now."""
    if name == "sqlite":
        return True
    if name == "duckdb":
        try:
            _import_duckdb()
        except OracleUnsupported:
            return False
        return True
    return False


def available_backends() -> tuple[str, ...]:
    """The subset of :data:`BACKEND_NAMES` with an installed driver."""
    return tuple(n for n in BACKEND_NAMES if backend_available(n))


def create_backend(name: str) -> DBAPIBackend:
    """Instantiate a fresh in-memory backend by registry name.

    Unknown names raise :class:`ValueError`; a known backend whose
    driver is missing raises :class:`~repro.errors.OracleUnsupported`
    (callers treat that as skip-with-reason).
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown oracle backend {name!r}: expected one of "
            f"{', '.join(BACKEND_NAMES)}"
        ) from None
    return factory()

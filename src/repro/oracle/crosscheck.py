"""Cross-backend multiset-equality checking of queries and rewritings.

For one scenario (query, views, database instance) the checker runs, on
the repro engine and on every configured live backend (SQLite always,
DuckDB when installed — see :mod:`repro.oracle.backends`):

1. every catalog view's materialization,
2. the query directly over the base tables,
3. every produced rewriting over the materialized views,

and demands multiset-equality (a) between the engine and each backend
for each of those, and (b) between each rewriting and the query *within*
each backend. Check (b) on a live backend is the fully independent
soundness oracle: it involves the repro engine nowhere.

With ``engine="both"`` every repro-engine evaluation additionally runs
on *both* the row and the columnar executors and their agreement is
enforced too. Together with multiple backends each scenario becomes an
N-way oracle (row engine = columnar engine = SQLite = DuckDB = ...).

One deliberate boundary: when the *base data* contains SQL NULLs, check
(b) is recorded as skipped rather than enforced. The paper's rewriting
theorems assume NULL-free base relations — a view's ``COUNT(B)`` output
is used as the group cardinality, which SQL's NULL-skipping COUNT
violates the moment B itself is NULL — so a (b)-disagreement there is a
property of the model, not a bug. Check (a) has no such excuse: the
engine claims SQL semantics, NULLs included, and is held to them.

Failures never raise — they are collected as :class:`Mismatch` records so
the fuzzer can shrink and persist them. Only a genuinely unsupported
backend feature raises :class:`~repro.errors.OracleUnsupported`, which
callers treat as skip-with-reason.
"""

from __future__ import annotations

from contextlib import ExitStack
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from ..blocks.query_block import QueryBlock
from ..core.multiview import all_rewritings
from ..core.result import Rewriting
from ..engine.database import Database
from ..errors import ReproError
from ..obs.budget import BudgetMeter, SearchBudget
from ..obs.metrics import current_metrics
from .backends import BACKEND_NAMES, DBAPIBackend, create_backend
from .values import rows_multiset_equal


@dataclass
class Mismatch:
    """One disagreement between backends (or backends and themselves)."""

    context: str
    left_label: str
    right_label: str
    left_rows: list
    right_rows: list
    sql: str = ""
    note: str = ""

    def describe(self) -> str:
        lines = [f"MISMATCH [{self.context}] {self.left_label} vs {self.right_label}"]
        if self.note:
            lines.append(f"  note: {self.note}")
        if self.sql:
            lines.append("  sql: " + self.sql.replace("\n", " "))
        lines.append(f"  {self.left_label}: {sorted(map(str, self.left_rows))}")
        lines.append(f"  {self.right_label}: {sorted(map(str, self.right_rows))}")
        return "\n".join(lines)


@dataclass
class CheckReport:
    """Outcome of one scenario cross-check."""

    mismatches: list[Mismatch] = field(default_factory=list)
    checks: int = 0
    rewritings: int = 0
    skipped: list[str] = field(default_factory=list)
    backends: tuple[str, ...] = ("sqlite",)
    #: Search-result sizes per planner strategy, filled when the checker
    #: ran its own search (``{"c1c4": 2, "cohen_nutt": 3}``) — the
    #: fuzzer's per-strategy found/missed tallies read from here.
    strategy_counts: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def describe(self) -> str:
        if self.ok:
            return (
                f"ok: {self.checks} checks, {self.rewritings} rewritings, "
                f"{len(self.skipped)} skipped "
                f"[backends: {', '.join(self.backends)}]"
            )
        return "\n".join(m.describe() for m in self.mismatches)


#: Engine modes the checker accepts: the evaluator's modes plus
#: ``"both"``, which runs row *and* columnar per evaluation and adds
#: their agreement as one more oracle axis.
ENGINE_MODES = ("row", "columnar", "auto", "both")


class CrossChecker:
    """Runs scenarios through the engine and live backends and compares."""

    def __init__(
        self,
        max_rewritings: Optional[int] = None,
        engine: str = "auto",
        backends: Sequence[str] = ("sqlite",),
        strategy: str = "c1c4",
    ):
        #: Cap on rewritings checked per scenario (None = all). The fuzz
        #: loop uses a cap so one view-rich scenario cannot eat the budget.
        self.max_rewritings = max_rewritings
        if engine not in ENGINE_MODES:
            raise ValueError(
                f"unknown engine mode {engine!r}: expected one of "
                f"{ENGINE_MODES}"
            )
        #: Which repro engine executes scenario evaluations; ``"both"``
        #: cross-checks the row and columnar engines against each other
        #: on every evaluation (see :func:`_engine_rows`).
        self.engine = engine
        for name in backends:
            if name not in BACKEND_NAMES:
                raise ValueError(
                    f"unknown oracle backend {name!r}: expected a subset "
                    f"of {BACKEND_NAMES}"
                )
        if not backends:
            raise ValueError("at least one oracle backend is required")
        #: Live backends each scenario executes on, in order. Asking for
        #: a backend whose driver is missing raises
        #: :class:`~repro.errors.OracleUnsupported` per check() call.
        self.backends = tuple(backends)
        from ..strategies import normalize_strategy

        #: Planner strategy for the checker's own search. ``"both"`` is
        #: the cross-planner differential mode: the C1–C4 and Cohen–Nutt
        #: searches run independently, the union is oracle-checked, and
        #: every C1–C4 rewriting must be found-or-subsumed by the
        #: Cohen–Nutt set (a ``dominance`` mismatch otherwise).
        self.strategy = normalize_strategy(strategy)

    def _engine_rows(
        self, report, db, query, extra_views, context: str, sql: str
    ) -> list:
        """Evaluate on the configured engine(s), recording row/columnar
        disagreements as mismatches in ``both`` mode."""
        if self.engine != "both":
            return db.execute(
                query, extra_views=extra_views, engine=self.engine
            ).rows
        row_rows = db.execute(
            query, extra_views=extra_views, engine="row"
        ).rows
        col_rows = db.execute(
            query, extra_views=extra_views, engine="columnar"
        ).rows
        report.checks += 1
        if not rows_multiset_equal(row_rows, col_rows):
            report.mismatches.append(
                Mismatch(context, "engine-row", "engine-columnar",
                         row_rows, col_rows, sql=sql)
            )
        return row_rows

    # ------------------------------------------------------------------

    def check(
        self,
        scenario,
        rewritings: Optional[Sequence[Rewriting]] = None,
        budget: Optional[Union[SearchBudget, BudgetMeter]] = None,
    ) -> CheckReport:
        """Cross-check one :class:`~repro.workloads.random_queries.Scenario`.

        ``rewritings`` defaults to the full ``all_rewritings`` search;
        passing a ``budget`` exercises the degraded search path (partial
        result sets must still be sound).
        """
        report = CheckReport(backends=self.backends)
        db = Database(scenario.catalog, scenario.instance)
        null_base = any(
            value is None
            for rows in scenario.instance.values()
            for row in rows
            for value in row
        )
        with ExitStack() as stack:
            backends = [
                stack.enter_context(create_backend(name))
                for name in self.backends
            ]
            for backend in backends:
                for name, schema in scenario.catalog.tables.items():
                    backend.create_table(name, schema.columns)
                    backend.load_rows(
                        name, scenario.instance.get(name, [])
                    )

            for view in scenario.views:
                self._check_view(report, db, backends, view)

            engine_q, backend_q = self._check_query(
                report, db, backends, scenario.query
            )
            if null_base:
                engine_q = None
                backend_q = {}
                report.skipped.append(
                    "rewriting-vs-query: NULL base data is outside the "
                    "rewriting model (backend agreement still enforced)"
                )

            if rewritings is None:
                rewritings = self._search(scenario, budget, report)
            if self.max_rewritings is not None:
                rewritings = list(rewritings)[: self.max_rewritings]
            for i, rewriting in enumerate(rewritings):
                self._check_rewriting(
                    report, db, backends, rewriting, i, engine_q, backend_q
                )
                report.rewritings += 1
        _record_report(report, null_base)
        return report

    # ------------------------------------------------------------------

    def _search(self, scenario, budget, report) -> list[Rewriting]:
        meter = budget.start() if isinstance(budget, SearchBudget) else budget
        base = all_rewritings(
            scenario.query,
            scenario.views,
            scenario.catalog,
            use_planner=True,
            budget=meter,
        )
        report.strategy_counts["c1c4"] = len(base)
        if self.strategy == "c1c4":
            return base
        from ..core.canonical import canonical_key
        from ..core.rewriter import merge_strategy_extras
        from ..strategies import cohen_nutt_rewritings

        union = merge_strategy_extras(
            base,
            cohen_nutt_rewritings(
                scenario.query, scenario.views, budget=meter
            ),
        )
        report.strategy_counts["cohen_nutt"] = len(union)
        if self.strategy == "both":
            # Completeness dominance: find-or-subsume every C1–C4
            # rewriting. By construction the union contains the base
            # set, so a violation is a structural regression in the
            # merge — checked anyway, exactly because it must never
            # fire.
            report.checks += 1
            union_keys = {canonical_key(rw.query) for rw in union}
            for rw in base:
                if canonical_key(rw.query) not in union_keys:
                    report.mismatches.append(
                        Mismatch(
                            "dominance",
                            "c1c4",
                            "cohen_nutt",
                            [],
                            [],
                            sql=rw.sql(),
                            note=(
                                "C1-C4 rewriting missing from the "
                                "Cohen-Nutt result set"
                            ),
                        )
                    )
        return union

    def _check_view(self, report, db, backends, view) -> None:
        context = f"view {view.name}"
        try:
            if self.engine == "both":
                engine_rows = self._engine_rows(
                    report, db, view.block, None, context,
                    backends[0].compile_block(view.block),
                )
            else:
                engine_rows = db.materialize(view.name).rows
        except ReproError as error:
            report.checks += 1
            report.mismatches.append(
                Mismatch(context, "engine", "any-backend", [], [],
                         note=f"engine error: {error}")
            )
            return
        for backend in backends:
            report.checks += 1
            sql = backend.compile_block(view.block)
            try:
                backend_rows = backend.materialize_view(view)
            except backend.error_types as error:
                report.mismatches.append(
                    Mismatch(context, "engine", backend.name, [], [],
                             sql=sql, note=f"{backend.name} error: {error}")
                )
                continue
            if not rows_multiset_equal(engine_rows, backend_rows):
                report.mismatches.append(
                    Mismatch(context, "engine", backend.name,
                             engine_rows, backend_rows, sql=sql)
                )

    def _check_query(
        self, report, db, backends, query: QueryBlock
    ) -> tuple[Optional[list], dict[str, list]]:
        engine_rows: Optional[list] = None
        engine_note = ""
        try:
            engine_rows = self._engine_rows(
                report, db, query, None, "query",
                backends[0].compile_block(query),
            )
        except ReproError as error:
            engine_note = f"engine error: {error}"
        backend_q: dict[str, list] = {}
        for backend in backends:
            report.checks += 1
            sql = backend.compile_block(query)
            note = engine_note
            backend_rows: Optional[list] = None
            try:
                backend_rows = backend.execute_block(query)
            except backend.error_types as error:
                note = (note + "; " if note else "") + (
                    f"{backend.name} error: {error}"
                )
            if note or not rows_multiset_equal(
                engine_rows or [], backend_rows or []
            ):
                report.mismatches.append(
                    Mismatch("query", "engine", backend.name,
                             engine_rows or [], backend_rows or [],
                             sql=sql, note=note)
                )
            if backend_rows is not None:
                backend_q[backend.name] = backend_rows
        return engine_rows, backend_q

    def _check_rewriting(
        self, report, db, backends, rewriting, index, engine_q, backend_q
    ) -> None:
        context = f"rewriting[{index}] using {','.join(rewriting.view_names)}"
        sql = rewriting.sql()
        engine_rows: Optional[list] = None
        engine_note = ""
        try:
            engine_rows = self._engine_rows(
                report, db, rewriting.query, rewriting.extra_views(),
                context, sql,
            )
        except ReproError as error:
            engine_note = f"engine error: {error}"

        for backend in backends:
            note = engine_note
            backend_rows: Optional[list] = None
            try:
                for aux in rewriting.aux_views:
                    backend.create_local_view(aux)
                backend_rows = backend.execute_block(rewriting.query)
            except backend.error_types as error:
                note = (note + "; " if note else "") + (
                    f"{backend.name} error: {error}"
                )
            finally:
                backend.drop_local_views()

            report.checks += 1
            if note or not rows_multiset_equal(
                engine_rows or [], backend_rows or []
            ):
                report.mismatches.append(
                    Mismatch(context, "engine", backend.name,
                             engine_rows or [], backend_rows or [],
                             sql=sql, note=note)
                )
                continue
            # Pure-independent soundness: the rewriting must equal the
            # query on the live backend alone (the repro engine is not
            # involved at all).
            report.checks += 1
            query_rows = backend_q.get(backend.name)
            if query_rows is not None and backend_rows is not None:
                if not rows_multiset_equal(backend_rows, query_rows):
                    report.mismatches.append(
                        Mismatch(
                            f"{context} vs query",
                            f"{backend.name} rewriting",
                            f"{backend.name} query",
                            backend_rows, query_rows, sql=sql,
                        )
                    )
        # And within the engine (the existing differential guarantee).
        report.checks += 1
        if engine_q is not None and engine_rows is not None:
            if not rows_multiset_equal(engine_rows, engine_q):
                report.mismatches.append(
                    Mismatch(f"{context} vs query", "engine rewriting",
                             "engine query", engine_rows, engine_q, sql=sql)
                )


def _record_report(report: CheckReport, null_base: bool) -> None:
    """Fold one scenario's outcome into the active metrics registry.

    Recorded once per :meth:`CrossChecker.check` so counter totals match
    report totals exactly, whatever path produced the mismatches.
    """
    metrics = current_metrics()
    if metrics is None:
        return
    metrics.counter(
        "repro_oracle_scenarios_total",
        "Scenarios cross-checked against live backends.",
    ).inc()
    if report.checks:
        metrics.counter(
            "repro_oracle_checks_total",
            "Individual multiset-equality comparisons performed.",
        ).inc(report.checks)
    if null_base:
        metrics.counter(
            "repro_oracle_vacations_total",
            "Scenarios whose rewriting-vs-query check was vacated "
            "because NULL base data is outside the rewriting model.",
        ).inc()
    if report.mismatches:
        family = metrics.counter(
            "repro_oracle_mismatches_total",
            "Cross-backend disagreements, by the backend that differed.",
            ("backend",),
        )
        for mismatch in report.mismatches:
            token = mismatch.right_label.split()[0]
            backend = token if token in BACKEND_NAMES else "engine"
            family.labels(backend).inc()


def check_scenario(
    scenario,
    rewritings: Optional[Sequence[Rewriting]] = None,
    budget: Optional[Union[SearchBudget, BudgetMeter]] = None,
    max_rewritings: Optional[int] = None,
    engine: str = "auto",
    backends: Sequence[str] = ("sqlite",),
    strategy: str = "c1c4",
) -> CheckReport:
    """Convenience wrapper: one-shot :class:`CrossChecker` run."""
    return CrossChecker(
        max_rewritings=max_rewritings,
        engine=engine,
        backends=backends,
        strategy=strategy,
    ).check(scenario, rewritings=rewritings, budget=budget)

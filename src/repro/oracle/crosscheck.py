"""Cross-backend multiset-equality checking of queries and rewritings.

For one scenario (query, views, database instance) the checker runs, on
both the repro engine and SQLite:

1. every catalog view's materialization,
2. the query directly over the base tables,
3. every produced rewriting over the materialized views,

and demands multiset-equality (a) between the two backends for each of
those, and (b) between each rewriting and the original query *within*
each backend. Check (b) on SQLite is the fully independent soundness
oracle: it involves the repro engine nowhere.

With ``engine="both"`` every repro-engine evaluation additionally runs
on *both* the row and the columnar executors and their agreement is
enforced too, making each scenario a three-way oracle
(row engine = columnar engine = SQLite).

One deliberate boundary: when the *base data* contains SQL NULLs, check
(b) is recorded as skipped rather than enforced. The paper's rewriting
theorems assume NULL-free base relations — a view's ``COUNT(B)`` output
is used as the group cardinality, which SQL's NULL-skipping COUNT
violates the moment B itself is NULL — so a (b)-disagreement there is a
property of the model, not a bug. Check (a) has no such excuse: the
engine claims SQL semantics, NULLs included, and is held to them.

Failures never raise — they are collected as :class:`Mismatch` records so
the fuzzer can shrink and persist them. Only a genuinely unsupported
backend feature raises :class:`~repro.errors.OracleUnsupported`, which
callers treat as skip-with-reason.
"""

from __future__ import annotations

import sqlite3
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from ..blocks.query_block import QueryBlock
from ..core.multiview import all_rewritings
from ..core.result import Rewriting
from ..engine.database import Database
from ..errors import OracleUnsupported, ReproError
from ..obs.budget import BudgetMeter, SearchBudget
from .sqlite import SQLiteBackend, compile_block
from .values import rows_multiset, rows_multiset_equal


@dataclass
class Mismatch:
    """One disagreement between backends (or backends and themselves)."""

    context: str
    left_label: str
    right_label: str
    left_rows: list
    right_rows: list
    sql: str = ""
    note: str = ""

    def describe(self) -> str:
        lines = [f"MISMATCH [{self.context}] {self.left_label} vs {self.right_label}"]
        if self.note:
            lines.append(f"  note: {self.note}")
        if self.sql:
            lines.append("  sql: " + self.sql.replace("\n", " "))
        lines.append(f"  {self.left_label}: {sorted(map(str, self.left_rows))}")
        lines.append(f"  {self.right_label}: {sorted(map(str, self.right_rows))}")
        return "\n".join(lines)


@dataclass
class CheckReport:
    """Outcome of one scenario cross-check."""

    mismatches: list[Mismatch] = field(default_factory=list)
    checks: int = 0
    rewritings: int = 0
    skipped: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def describe(self) -> str:
        if self.ok:
            return (
                f"ok: {self.checks} checks, {self.rewritings} rewritings, "
                f"{len(self.skipped)} skipped"
            )
        return "\n".join(m.describe() for m in self.mismatches)


#: Engine modes the checker accepts: the evaluator's modes plus
#: ``"both"``, which runs row *and* columnar per evaluation and adds
#: their agreement as a third oracle axis (three-way agreement:
#: row engine vs columnar engine vs SQLite).
ENGINE_MODES = ("row", "columnar", "auto", "both")


class CrossChecker:
    """Runs scenarios through the engine and SQLite and compares."""

    def __init__(
        self,
        max_rewritings: Optional[int] = None,
        engine: str = "auto",
    ):
        #: Cap on rewritings checked per scenario (None = all). The fuzz
        #: loop uses a cap so one view-rich scenario cannot eat the budget.
        self.max_rewritings = max_rewritings
        if engine not in ENGINE_MODES:
            raise ValueError(
                f"unknown engine mode {engine!r}: expected one of "
                f"{ENGINE_MODES}"
            )
        #: Which repro engine executes scenario evaluations; ``"both"``
        #: cross-checks the row and columnar engines against each other
        #: on every evaluation (see :func:`_engine_rows`).
        self.engine = engine

    def _engine_rows(
        self, report, db, query, extra_views, context: str, sql: str
    ) -> list:
        """Evaluate on the configured engine(s), recording row/columnar
        disagreements as mismatches in ``both`` mode."""
        if self.engine != "both":
            return db.execute(
                query, extra_views=extra_views, engine=self.engine
            ).rows
        row_rows = db.execute(
            query, extra_views=extra_views, engine="row"
        ).rows
        col_rows = db.execute(
            query, extra_views=extra_views, engine="columnar"
        ).rows
        report.checks += 1
        if not rows_multiset_equal(row_rows, col_rows):
            report.mismatches.append(
                Mismatch(context, "engine-row", "engine-columnar",
                         row_rows, col_rows, sql=sql)
            )
        return row_rows

    # ------------------------------------------------------------------

    def check(
        self,
        scenario,
        rewritings: Optional[Sequence[Rewriting]] = None,
        budget: Optional[Union[SearchBudget, BudgetMeter]] = None,
    ) -> CheckReport:
        """Cross-check one :class:`~repro.workloads.random_queries.Scenario`.

        ``rewritings`` defaults to the full ``all_rewritings`` search;
        passing a ``budget`` exercises the degraded search path (partial
        result sets must still be sound).
        """
        report = CheckReport()
        db = Database(scenario.catalog, scenario.instance)
        null_base = any(
            value is None
            for rows in scenario.instance.values()
            for row in rows
            for value in row
        )
        with SQLiteBackend() as backend:
            for name, schema in scenario.catalog.tables.items():
                backend.create_table(name, schema.columns)
                backend.load_rows(name, scenario.instance.get(name, []))

            for view in scenario.views:
                self._check_view(report, db, backend, view)

            engine_q, sqlite_q = self._check_query(
                report, db, backend, scenario.query
            )
            if null_base:
                engine_q = sqlite_q = None
                report.skipped.append(
                    "rewriting-vs-query: NULL base data is outside the "
                    "rewriting model (backend agreement still enforced)"
                )

            if rewritings is None:
                rewritings = self._search(scenario, budget)
            if self.max_rewritings is not None:
                rewritings = list(rewritings)[: self.max_rewritings]
            for i, rewriting in enumerate(rewritings):
                self._check_rewriting(
                    report, db, backend, rewriting, i, engine_q, sqlite_q
                )
                report.rewritings += 1
        return report

    # ------------------------------------------------------------------

    @staticmethod
    def _search(scenario, budget) -> list[Rewriting]:
        meter = budget.start() if isinstance(budget, SearchBudget) else budget
        return all_rewritings(
            scenario.query,
            scenario.views,
            scenario.catalog,
            use_planner=True,
            budget=meter,
        )

    def _check_view(self, report, db, backend, view) -> None:
        report.checks += 1
        context = f"view {view.name}"
        sql = compile_block(view.block)
        try:
            sqlite_rows = backend.materialize_view(view)
        except sqlite3.Error as error:
            report.mismatches.append(
                Mismatch(context, "engine", "sqlite", [], [],
                         sql=sql, note=f"sqlite error: {error}")
            )
            return
        try:
            if self.engine == "both":
                engine_rows = self._engine_rows(
                    report, db, view.block, None, context, sql
                )
            else:
                engine_rows = db.materialize(view.name).rows
        except ReproError as error:
            report.mismatches.append(
                Mismatch(context, "engine", "sqlite", [], sqlite_rows,
                         sql=sql, note=f"engine error: {error}")
            )
            return
        if not rows_multiset_equal(engine_rows, sqlite_rows):
            report.mismatches.append(
                Mismatch(context, "engine", "sqlite",
                         engine_rows, sqlite_rows, sql=sql)
            )

    def _check_query(
        self, report, db, backend, query: QueryBlock
    ) -> tuple[Optional[list], Optional[list]]:
        report.checks += 1
        sql = compile_block(query)
        engine_rows: Optional[list] = None
        sqlite_rows: Optional[list] = None
        note = ""
        try:
            engine_rows = self._engine_rows(
                report, db, query, None, "query", sql
            )
        except ReproError as error:
            note = f"engine error: {error}"
        try:
            sqlite_rows = backend.execute_block(query)
        except sqlite3.Error as error:
            note = (note + "; " if note else "") + f"sqlite error: {error}"
        if note or not rows_multiset_equal(engine_rows or [], sqlite_rows or []):
            report.mismatches.append(
                Mismatch("query", "engine", "sqlite",
                         engine_rows or [], sqlite_rows or [],
                         sql=sql, note=note)
            )
        return engine_rows, sqlite_rows

    def _check_rewriting(
        self, report, db, backend, rewriting, index, engine_q, sqlite_q
    ) -> None:
        context = f"rewriting[{index}] using {','.join(rewriting.view_names)}"
        sql = rewriting.sql()
        engine_rows: Optional[list] = None
        sqlite_rows: Optional[list] = None
        note = ""
        try:
            engine_rows = self._engine_rows(
                report, db, rewriting.query, rewriting.extra_views(),
                context, sql,
            )
        except ReproError as error:
            note = f"engine error: {error}"
        try:
            for aux in rewriting.aux_views:
                backend.create_local_view(aux)
            sqlite_rows = backend.execute_block(rewriting.query)
        except sqlite3.Error as error:
            note = (note + "; " if note else "") + f"sqlite error: {error}"
        finally:
            backend.drop_local_views()

        report.checks += 1
        if note or not rows_multiset_equal(engine_rows or [], sqlite_rows or []):
            report.mismatches.append(
                Mismatch(context, "engine", "sqlite",
                         engine_rows or [], sqlite_rows or [],
                         sql=sql, note=note)
            )
            return
        # Pure-independent soundness: the rewriting must equal the query
        # on SQLite alone (the repro engine is not involved at all).
        report.checks += 1
        if sqlite_q is not None and sqlite_rows is not None:
            if not rows_multiset_equal(sqlite_rows, sqlite_q):
                report.mismatches.append(
                    Mismatch(f"{context} vs query", "sqlite rewriting",
                             "sqlite query", sqlite_rows, sqlite_q, sql=sql)
                )
        # And within the engine (the existing differential guarantee).
        report.checks += 1
        if engine_q is not None and engine_rows is not None:
            if not rows_multiset_equal(engine_rows, engine_q):
                report.mismatches.append(
                    Mismatch(f"{context} vs query", "engine rewriting",
                             "engine query", engine_rows, engine_q, sql=sql)
                )


def check_scenario(
    scenario,
    rewritings: Optional[Sequence[Rewriting]] = None,
    budget: Optional[Union[SearchBudget, BudgetMeter]] = None,
    max_rewritings: Optional[int] = None,
    engine: str = "auto",
) -> CheckReport:
    """Convenience wrapper: one-shot :class:`CrossChecker` run."""
    return CrossChecker(max_rewritings=max_rewritings, engine=engine).check(
        scenario, rewritings=rewritings, budget=budget
    )

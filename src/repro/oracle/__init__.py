"""Cross-backend execution oracle.

The repro engine (:mod:`repro.engine`) is both the evaluator *and* the
referee of every soundness check, so a bug shared by the evaluator and
the rewriter is invisible to the in-repo harnesses. This package lowers
:class:`~repro.blocks.query_block.QueryBlock`\\ s to dialect-correct SQL
(:mod:`repro.dialects`) executed on independently implemented backends —
stdlib ``sqlite3`` always, DuckDB when installed — and asserts
multiset-equality of the query, every view materialization and every
produced rewriting across all of them (see ``docs/oracle.md`` and
``docs/dialects.md``).
"""

from .backends import (
    BACKEND_NAMES,
    DBAPIBackend,
    DuckDBBackend,
    SQLiteBackend,
    available_backends,
    backend_available,
    create_backend,
)
from .crosscheck import (
    ENGINE_MODES,
    CheckReport,
    CrossChecker,
    Mismatch,
    check_scenario,
)
from .sqlite import compile_block
from .values import normalize_row, normalize_value, rows_multiset_equal

__all__ = [
    "BACKEND_NAMES",
    "CheckReport",
    "CrossChecker",
    "DBAPIBackend",
    "DuckDBBackend",
    "ENGINE_MODES",
    "Mismatch",
    "SQLiteBackend",
    "available_backends",
    "backend_available",
    "check_scenario",
    "compile_block",
    "create_backend",
    "normalize_row",
    "normalize_value",
    "rows_multiset_equal",
]

"""Cross-backend execution oracle.

The repro engine (:mod:`repro.engine`) is both the evaluator *and* the
referee of every soundness check, so a bug shared by the evaluator and
the rewriter is invisible to the in-repo harnesses. This package lowers
:class:`~repro.blocks.query_block.QueryBlock`\\ s to standard SQL executed
on stdlib ``sqlite3`` — an independently implemented backend — and
asserts multiset-equality of the query, every view materialization and
every produced rewriting across the two engines (see ``docs/oracle.md``).
"""

from .crosscheck import (
    ENGINE_MODES,
    CheckReport,
    CrossChecker,
    Mismatch,
    check_scenario,
)
from .sqlite import SQLiteBackend, compile_block
from .values import normalize_row, normalize_value, rows_multiset_equal

__all__ = [
    "CheckReport",
    "CrossChecker",
    "ENGINE_MODES",
    "Mismatch",
    "SQLiteBackend",
    "check_scenario",
    "compile_block",
    "normalize_row",
    "normalize_value",
    "rows_multiset_equal",
]

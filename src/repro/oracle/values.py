"""Value normalization for cross-backend result comparison.

The repro engine computes exact rationals (AVG and ``/`` over integers
yield :class:`fractions.Fraction`), while SQLite returns REAL. Comparing
raw rows would flag ``Fraction(2, 3) != 0.6666…`` as a soundness bug, so
both sides are normalized before the multiset comparison: every float is
lifted back to the nearest small-denominator rational.

``limit_denominator(10**9)`` recovers the exact rational whenever the
true denominator is small — here it is bounded by the group size, a few
hundred rows at most — so the comparison stays *exact*, not tolerance
based: two genuinely different aggregate results are never conflated.
"""

from __future__ import annotations

import math
from collections import Counter
from fractions import Fraction
from typing import Iterable, Sequence

#: Largest denominator recovered from a float; far above any group size
#: the generators produce, far below where float noise could alias.
_MAX_DENOMINATOR = 10**9


def normalize_value(value: object) -> object:
    """A backend-independent comparison key for one cell value."""
    if value is None or isinstance(value, str):
        return value
    if isinstance(value, bool):
        return Fraction(int(value))
    if isinstance(value, int):
        return Fraction(value)
    if isinstance(value, Fraction):
        return value
    if isinstance(value, float):
        if math.isnan(value) or math.isinf(value):
            return value
        return Fraction(value).limit_denominator(_MAX_DENOMINATOR)
    return value


def normalize_row(row: Sequence) -> tuple:
    return tuple(normalize_value(v) for v in row)


def rows_multiset(rows: Iterable[Sequence]) -> Counter:
    """The multiset of normalized rows."""
    return Counter(normalize_row(row) for row in rows)


def rows_multiset_equal(left: Iterable[Sequence], right: Iterable[Sequence]) -> bool:
    """Multiset equality of two row collections, up to numeric encoding."""
    return rows_multiset(left) == rows_multiset(right)

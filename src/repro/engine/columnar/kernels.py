"""Column-level kernels: compile expressions and predicates once per block.

The row engine compiles an expression into a ``row -> value`` closure
and pays a Python call per row per node. Here an expression compiles to
a *column kernel* — a ``Batch -> list`` function evaluated once per
query block over whole columns — and a predicate compiles to a
*selection kernel* — ``Batch -> list[int]`` returning the indices of the
rows it keeps. All kernels preserve the engine's SQL semantics exactly:

* comparisons with NULL are not true (the row never passes a filter);
* arithmetic propagates NULL, and division by zero yields NULL;
* integer division produces exact :class:`fractions.Fraction` values,
  matching the row engine and the Fraction-normalized oracle comparison.
"""

from __future__ import annotations

import operator
from fractions import Fraction
from typing import Callable

from ...blocks.exprs import Arith, ArithOp, Expr
from ...blocks.terms import Column, Comparison, Constant, Op
from ...errors import EvaluationError
from .batch import Batch

#: A compiled expression: whole-column evaluation over a batch.
ValueKernel = Callable[[Batch], list]
#: A compiled predicate: the selection vector of rows it keeps.
FilterKernel = Callable[[Batch], list]

_OP_FUNCS = {
    Op.LT: operator.lt,
    Op.LE: operator.le,
    Op.EQ: operator.eq,
    Op.GE: operator.ge,
    Op.GT: operator.gt,
    Op.NE: operator.ne,
}


def _comparison_error(op: Op) -> EvaluationError:
    return EvaluationError(f"cannot compare values under {op}")


# ----------------------------------------------------------------------
# Value kernels (row-level expressions, vectorized)
# ----------------------------------------------------------------------


def compile_value_kernel(expr: Expr) -> ValueKernel:
    """Compile a row-level expression into a whole-column kernel."""
    if isinstance(expr, Column):
        return lambda batch: batch.column(expr)
    if isinstance(expr, Constant):
        value = expr.value
        return lambda batch: [value] * batch.length
    if isinstance(expr, Arith):
        left = compile_value_kernel(expr.left)
        right = compile_value_kernel(expr.right)
        cell = _ARITH_CELLS[expr.op]
        return lambda batch: cell(left(batch), right(batch))
    raise EvaluationError(f"not a row-level expression: {expr}")


def _add_cells(left: list, right: list) -> list:
    return [
        None if a is None or b is None else a + b
        for a, b in zip(left, right)
    ]


def _sub_cells(left: list, right: list) -> list:
    return [
        None if a is None or b is None else a - b
        for a, b in zip(left, right)
    ]


def _mul_cells(left: list, right: list) -> list:
    return [
        None if a is None or b is None else a * b
        for a, b in zip(left, right)
    ]


def _div_cells(left: list, right: list) -> list:
    # SQL / SQLite: x / 0 is NULL; int / int is exact (Fraction).
    out = []
    append = out.append
    for a, b in zip(left, right):
        if a is None or b is None or b == 0:
            append(None)
        elif isinstance(a, int) and isinstance(b, int):
            append(Fraction(a, b))
        else:
            append(a / b)
    return out


_ARITH_CELLS = {
    ArithOp.ADD: _add_cells,
    ArithOp.SUB: _sub_cells,
    ArithOp.MUL: _mul_cells,
    ArithOp.DIV: _div_cells,
}


# ----------------------------------------------------------------------
# Selection kernels (WHERE predicates, vectorized)
# ----------------------------------------------------------------------


def compile_filter_kernel(atom: Comparison) -> FilterKernel:
    """Compile ``left op right`` into a selection-vector kernel.

    WHERE sides are columns or constants (enforced by
    :meth:`QueryBlock.validate`); each of the four shapes gets a
    specialized tight loop.
    """
    left, op, right = atom.left, atom.op, atom.right
    op_fn = _OP_FUNCS[op]

    if isinstance(left, Column) and isinstance(right, Column):

        def kernel(batch: Batch) -> list:
            lv = batch.column(left)
            rv = batch.column(right)
            try:
                return [
                    i
                    for i, (a, b) in enumerate(zip(lv, rv))
                    if a is not None and b is not None and op_fn(a, b)
                ]
            except TypeError:
                raise _comparison_error(op) from None

        return kernel

    if isinstance(left, Constant) and isinstance(right, Column):
        # Normalize to column-op-constant so the specialized loops below
        # cover both orientations.
        return compile_filter_kernel(atom.flipped)

    if isinstance(left, Column) and isinstance(right, Constant):
        const = right.value
        maker = _COL_CONST_KERNELS[op]
        return maker(left, const, op)

    if isinstance(left, Constant) and isinstance(right, Constant):
        decided = op.holds(left.value, right.value)

        def kernel(batch: Batch) -> list:
            return list(range(batch.length)) if decided else []

        return kernel

    raise EvaluationError(f"not a WHERE-level predicate: {atom}")


# The column-vs-constant loops are the hottest kernels in the engine, so
# each operator gets its own closure with the comparison inlined (no
# per-row dispatch through ``operator``). EQ needs no NULL guard:
# ``None == const`` is False for every legal constant and ``==`` never
# raises across types.


def _make_eq(col: Column, const, op: Op) -> FilterKernel:
    def kernel(batch: Batch) -> list:
        return [i for i, v in enumerate(batch.column(col)) if v == const]

    return kernel


def _make_ne(col: Column, const, op: Op) -> FilterKernel:
    def kernel(batch: Batch) -> list:
        return [
            i
            for i, v in enumerate(batch.column(col))
            if v is not None and v != const
        ]

    return kernel


def _make_lt(col: Column, const, op: Op) -> FilterKernel:
    def kernel(batch: Batch) -> list:
        try:
            return [
                i
                for i, v in enumerate(batch.column(col))
                if v is not None and v < const
            ]
        except TypeError:
            raise _comparison_error(op) from None

    return kernel


def _make_le(col: Column, const, op: Op) -> FilterKernel:
    def kernel(batch: Batch) -> list:
        try:
            return [
                i
                for i, v in enumerate(batch.column(col))
                if v is not None and v <= const
            ]
        except TypeError:
            raise _comparison_error(op) from None

    return kernel


def _make_ge(col: Column, const, op: Op) -> FilterKernel:
    def kernel(batch: Batch) -> list:
        try:
            return [
                i
                for i, v in enumerate(batch.column(col))
                if v is not None and v >= const
            ]
        except TypeError:
            raise _comparison_error(op) from None

    return kernel


def _make_gt(col: Column, const, op: Op) -> FilterKernel:
    def kernel(batch: Batch) -> list:
        try:
            return [
                i
                for i, v in enumerate(batch.column(col))
                if v is not None and v > const
            ]
        except TypeError:
            raise _comparison_error(op) from None

    return kernel


_COL_CONST_KERNELS = {
    Op.EQ: _make_eq,
    Op.NE: _make_ne,
    Op.LT: _make_lt,
    Op.LE: _make_le,
    Op.GE: _make_ge,
    Op.GT: _make_gt,
}

"""The vectorized scan → filter → hash-join → group/aggregate pipeline.

Drop-in counterpart of the row engine's ``build_core`` + grouped
evaluation: :func:`evaluate_block_columnar` computes exactly the same
multiset of answer rows as :func:`repro.engine.evaluator.evaluate_block`
with ``engine="row"`` (the row engine is retained as the parity oracle —
see ``docs/engine.md``), but it never materializes per-row tuples until
the final output:

* scans bind each FROM occurrence's base columns into a
  :class:`~repro.engine.columnar.batch.Batch` (no copying);
* pushed-down predicates run as compiled selection kernels, producing
  zero-copy selection vectors;
* equi-joins run as hash joins over gathered key columns, emitting
  parallel position vectors instead of concatenated tuples;
* grouping assigns dense group ids in a single pass and folds every
  aggregate with the per-group accumulation kernels of
  :mod:`repro.engine.aggregates`;
* SELECT / HAVING group expressions are compiled once per block and
  evaluated once per group.

Pushdown, join order and deferred-predicate scheduling reuse the row
planner's :func:`~repro.engine.planner.classify_predicates` and
:func:`~repro.engine.planner.greedy_join_order`, so both engines make
identical plan decisions and differ only in execution strategy.
"""

from __future__ import annotations

from typing import Callable

from ...blocks.exprs import Aggregate, Arith, Expr, columns_in
from ...blocks.query_block import QueryBlock
from ...blocks.terms import Column, Comparison, Constant
from ...errors import EvaluationError
from ...obs.metrics import current_metrics
from ..aggregates import accumulate_by_group, apply_aggregate
from ..planner import classify_predicates, greedy_join_order
from ..table import Table
from .batch import Batch
from .kernels import compile_filter_kernel, compile_value_kernel

RelationResolver = Callable[[str], Table]


def _count_kernels(kind: str, n: int) -> None:
    """Top-level kernel compilations into the active registry, if any.

    Counted at executor call sites, not inside the (recursive) kernel
    compilers, so one Arith tree counts as one compilation.
    """
    if not n:
        return
    metrics = current_metrics()
    if metrics is not None:
        metrics.counter(
            "repro_engine_kernel_compilations_total",
            "Columnar kernels compiled, by kind.",
            ("kind",),
        ).labels(kind).inc(n)


def evaluate_block_columnar(
    block: QueryBlock, resolve: RelationResolver
) -> Table:
    """Evaluate ``block`` on the columnar engine (exact row-engine parity)."""
    batch = build_core_batch(block, resolve)
    if block.is_aggregation:
        result = _evaluate_grouped(block, batch)
    else:
        kernels = [
            compile_value_kernel(item.expr) for item in block.select
        ]
        _count_kernels("value", len(kernels))
        columns = [kernel(batch) for kernel in kernels]
        if len(columns) == 1:
            rows = [(v,) for v in columns[0]]
        else:
            rows = list(zip(*columns)) if batch.length else []
        result = Table.from_rows(block.output_names(), rows)
    if block.distinct:
        result = result.distinct()
    return result


# ----------------------------------------------------------------------
# Core-table construction (columnar)
# ----------------------------------------------------------------------


def build_core_batch(
    block: QueryBlock, resolve: RelationResolver
) -> Batch:
    """The filtered core table of ``block`` as a columnar batch."""
    n = len(block.from_)
    owner_of: dict[Column, int] = {}
    for i, rel in enumerate(block.from_):
        for col in rel.columns:
            owner_of[col] = i

    classified = classify_predicates(block, owner_of)
    if classified.contradiction:
        # Constant-false WHERE: the core table is empty, no scan needed.
        return Batch.empty([rel.columns for rel in block.from_])

    # ------------------------------------------------------------------
    # Scan each relation into a batch; push local predicates down.
    # ------------------------------------------------------------------
    rows_scanned = 0
    filter_kernels = 0
    scans: list[Batch] = []
    for i, rel in enumerate(block.from_):
        data = resolve(rel.name)
        if len(data.columns) != len(rel.columns):
            raise EvaluationError(
                f"relation {rel.name}: expected {len(rel.columns)} "
                f"columns, data has {len(data.columns)}"
            )
        rows_scanned += len(data.rows)
        column_data = data.as_columns()
        columns = {
            col: column_data[j] for j, col in enumerate(rel.columns)
        }
        scan = Batch.from_columns(columns, len(data.rows))
        for atom in classified.local[i]:
            scan = scan.select(compile_filter_kernel(atom)(scan))
            filter_kernels += 1
        scans.append(scan)

    order = greedy_join_order(
        [scan.length for scan in scans], classified.equi_joins
    )

    # ------------------------------------------------------------------
    # Hash joins along the order; deferred predicates as soon as bound.
    # ------------------------------------------------------------------
    bound: set[int] = {order[0]}
    bound_cols: set[Column] = set(block.from_[order[0]].columns)
    batch = scans[order[0]]
    pending = list(classified.deferred)
    before = len(pending)
    batch, pending = _apply_ready(batch, pending, bound_cols)
    filter_kernels += before - len(pending)

    for idx in order[1:]:
        rel = block.from_[idx]
        # Every equality atom linking the new relation to the bound set
        # becomes part of the hash key: (new column, bound column).
        edges: list[tuple[Column, Column]] = []
        for a, b, l, r in classified.equi_joins:
            if a == idx and b in bound:
                edges.append((l, r))
            elif b == idx and a in bound:
                edges.append((r, l))
        if edges and batch.length:
            batch = _hash_join(batch, scans[idx], edges)
        else:
            batch = batch.cross(scans[idx])
        bound.add(idx)
        bound_cols.update(rel.columns)
        before = len(pending)
        batch, pending = _apply_ready(batch, pending, bound_cols)
        filter_kernels += before - len(pending)

    metrics = current_metrics()
    if metrics is not None:
        metrics.counter(
            "repro_engine_rows_scanned_total",
            "Base-relation rows read while building core tables.",
            ("engine",),
        ).labels("columnar").inc(rows_scanned)
        metrics.counter(
            "repro_engine_rows_joined_total",
            "Core-table rows produced by the join phase.",
            ("engine",),
        ).labels("columnar").inc(batch.length)
        _count_kernels("filter", filter_kernels)
    return batch


def _hash_join(
    probe: Batch, build: Batch, edges: list
) -> Batch:
    """Hash join emitting parallel position vectors (NULL keys never match).

    The hash table is always built on the smaller input (the multiset
    join is symmetric, so swapping roles only permutes output order,
    which multiset semantics ignores).
    """
    if build.length > probe.length:
        probe, build = build, probe
        edges = [(b, c) for c, b in edges]
    probe_idx: list = []
    build_idx: list = []
    probe_append = probe_idx.append
    build_append = build_idx.append
    table: dict = {}
    if len(edges) == 1:
        build_col, probe_col = edges[0]
        build_vals = build.column(build_col)
        unique = True
        for j, v in enumerate(build_vals):
            if v is None:
                continue  # SQL: NULL = anything is not true
            if v in table:
                unique = False
                break
            table[v] = j
        probe_vals = probe.column(probe_col)
        if unique:
            # Unique build keys (the fact-to-dimension shape): at most
            # one hit per probe row, so the whole probe runs as
            # listcomps with no per-row bucket handling. ``get(None)``
            # misses because NULL keys were never inserted.
            get = table.get
            hits = [get(v) for v in probe_vals]
            if None not in hits:
                # Every probe row matched: the probe side keeps its
                # identity selection (no position rewrite, no gather).
                return probe.join(build, None, hits)
            probe_idx = [i for i, j in enumerate(hits) if j is not None]
            build_idx = [hits[i] for i in probe_idx]
        else:
            table = {}
            for j, v in enumerate(build_vals):
                if v is None:
                    continue
                bucket = table.get(v)
                if bucket is None:
                    table[v] = [j]
                else:
                    bucket.append(j)
            get = table.get
            for i, v in enumerate(probe_vals):
                if v is None:
                    continue
                bucket = get(v)
                if bucket is None:
                    continue
                if len(bucket) == 1:
                    probe_append(i)
                    build_append(bucket[0])
                else:
                    probe_idx.extend([i] * len(bucket))
                    build_idx.extend(bucket)
    else:
        build_cols = [build.column(c) for c, _b in edges]
        probe_cols = [probe.column(b) for _c, b in edges]
        for j, key in enumerate(zip(*build_cols)):
            if None in key:
                continue
            bucket = table.get(key)
            if bucket is None:
                table[key] = [j]
            else:
                bucket.append(j)
        get = table.get
        for i, key in enumerate(zip(*probe_cols)):
            if None in key:
                continue
            bucket = get(key)
            if bucket is None:
                continue
            if len(bucket) == 1:
                probe_append(i)
                build_append(bucket[0])
            else:
                probe_idx.extend([i] * len(bucket))
                build_idx.extend(bucket)
    return probe.join(build, probe_idx, build_idx)


def _apply_ready(
    batch: Batch, pending: list, bound_cols: set
) -> tuple[Batch, list]:
    """Apply every pending predicate whose columns are all bound."""
    still: list = []
    for atom in pending:
        cols = list(columns_in(atom.left)) + list(columns_in(atom.right))
        if all(c in bound_cols for c in cols):
            batch = batch.select(compile_filter_kernel(atom)(batch))
        else:
            still.append(atom)
    return batch, still


# ----------------------------------------------------------------------
# Grouped aggregation (single-pass dense group ids)
# ----------------------------------------------------------------------


class _GroupIds(dict):
    """Maps each grouping key to a dense id, assigned on first lookup."""

    __slots__ = ()

    def __missing__(self, key):
        gid = self[key] = len(self)
        return gid


def _positional_groups(batch: Batch, group_cols):
    """Dense group ids keyed by source position instead of value tuples.

    When every GROUP BY column lives in one source behind a shared
    selection vector (e.g. the dimension side of a join), rows at the
    same source position necessarily carry the same grouping key — so
    the per-row work is one int dict lookup, no tuple allocation, no
    column gather. Distinct positions can still hold *equal* keys
    (duplicate dimension rows), so position groups are merged by their
    materialized key afterwards; that pass is per distinct position,
    not per row.

    Returns None when the columns span sources, the source has the
    identity selection (nothing to key on), or the source's base table
    is not much smaller than the batch: positions only repeat enough
    to pay off when a small relation fans out across many batch rows,
    while a filtered fact table has mostly-distinct positions and the
    per-position merge becomes pure overhead.
    """
    source = batch.common_source(group_cols)
    if source is None:
        return None
    columns, positions = source
    if positions is None:
        return None
    base_rows = len(next(iter(columns.values())))
    if base_rows * 8 > batch.length:
        return None
    pos_map = _GroupIds()
    pgids = [pos_map[p] for p in positions]
    data = [columns[c] for c in group_cols]
    key_map = _GroupIds()
    remap = [
        key_map[tuple(col[p] for col in data)] for p in pos_map
    ]
    if len(key_map) == len(pos_map):
        return pgids, list(key_map), len(key_map)
    return (
        [remap[g] for g in pgids],
        list(key_map),
        len(key_map),
    )


def _evaluate_grouped(block: QueryBlock, batch: Batch) -> Table:
    group_cols = block.group_by
    n = batch.length

    # Dense group ids in one pass. SQL groups NULL keys together, which
    # dict keying on None gives for free (matching the row engine and
    # SQLite GROUP BY). The auto-assigning dict keeps the whole pass a
    # listcomp of C-speed lookups; ``__missing__`` only fires once per
    # distinct key.
    if group_cols:
        grouped = _positional_groups(batch, group_cols)
        if grouped is None:
            group_map = _GroupIds()
            if len(group_cols) == 1:
                gids = [
                    group_map[v] for v in batch.column(group_cols[0])
                ]
                keys = [(k,) for k in group_map]
            else:
                key_cols = [batch.column(c) for c in group_cols]
                gids = [group_map[key] for key in zip(*key_cols)]
                keys = list(group_map)
            ngroups = len(group_map)
        else:
            gids, keys, ngroups = grouped
    else:
        # A single group that exists even when the core table is empty.
        gids = [0] * n
        keys = [()]
        ngroups = 1

    # Every distinct aggregate folds once over its argument column.
    distinct_aggs: list[Aggregate] = []
    for agg in block.all_aggregates():
        if agg not in distinct_aggs:
            distinct_aggs.append(agg)
    _count_kernels("value", len(distinct_aggs))
    agg_values: dict[Aggregate, list] = {}
    for agg in distinct_aggs:
        arg_column = compile_value_kernel(agg.arg)(batch)
        if group_cols:
            agg_values[agg] = accumulate_by_group(
                agg.func, gids, arg_column, ngroups
            )
        else:
            agg_values[agg] = [apply_aggregate(agg.func, arg_column)]

    key_pos = {col: i for i, col in enumerate(group_cols)}

    having = [
        _compile_group_predicate(atom, key_pos, agg_values)
        for atom in block.having
    ]
    select = [
        _compile_group_expr(item.expr, key_pos, agg_values)
        for item in block.select
    ]

    metrics = current_metrics()
    if metrics is not None:
        metrics.counter(
            "repro_engine_rows_grouped_total",
            "Core rows fed into grouped aggregation, by executor.",
            ("engine",),
        ).labels("columnar").inc(n)
        metrics.counter(
            "repro_engine_groups_total",
            "Groups formed by grouped aggregation, by executor.",
            ("engine",),
        ).labels("columnar").inc(ngroups)

    out_rows: list = []
    out_append = out_rows.append
    for gid in range(ngroups):
        key = keys[gid]
        if all(predicate(key, gid) for predicate in having):
            out_append(tuple(fn(key, gid) for fn in select))
    return Table.from_rows(block.output_names(), out_rows)


def _compile_group_expr(
    expr: Expr, key_pos: dict, agg_values: dict
) -> Callable:
    """Compile a group-level expression to a ``(key, gid) -> value`` fn."""
    from ..evaluator import _arith

    if isinstance(expr, Column):
        try:
            i = key_pos[expr]
        except KeyError:
            raise EvaluationError(
                f"column {expr} used outside GROUP BY in grouped query"
            ) from None
        return lambda key, gid: key[i]
    if isinstance(expr, Constant):
        value = expr.value
        return lambda key, gid: value
    if isinstance(expr, Aggregate):
        values = agg_values[expr]
        return lambda key, gid: values[gid]
    if isinstance(expr, Arith):
        left = _compile_group_expr(expr.left, key_pos, agg_values)
        right = _compile_group_expr(expr.right, key_pos, agg_values)
        op = expr.op
        return lambda key, gid: _arith(op, left(key, gid), right(key, gid))
    raise EvaluationError(f"cannot evaluate expression {expr}")


def _compile_group_predicate(
    atom: Comparison, key_pos: dict, agg_values: dict
) -> Callable:
    from ..evaluator import _compare

    left = _compile_group_expr(atom.left, key_pos, agg_values)
    right = _compile_group_expr(atom.right, key_pos, agg_values)
    op = atom.op
    return lambda key, gid: _compare(op, left(key, gid), right(key, gid))

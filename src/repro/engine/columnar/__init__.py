"""Vectorized columnar execution engine.

The performance-oriented counterpart of the row-at-a-time evaluator:
dict-of-columns batches with zero-copy selection vectors, predicates and
projections compiled once per query block into column-level kernels, and
single-pass grouped aggregation. Selected through the ``engine=`` mode
switch on :func:`repro.engine.evaluate_block` /
:meth:`repro.engine.Database.execute`; the row engine remains the parity
oracle (see ``docs/engine.md``).
"""

from .batch import Batch
from .executor import build_core_batch, evaluate_block_columnar
from .kernels import compile_filter_kernel, compile_value_kernel

__all__ = [
    "Batch",
    "build_core_batch",
    "compile_filter_kernel",
    "compile_value_kernel",
    "evaluate_block_columnar",
]

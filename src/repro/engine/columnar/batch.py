"""Columnar batches: dict-of-columns data plus zero-copy selection vectors.

A :class:`Batch` is the columnar counterpart of the row engine's
``list[Row]`` core table. It never stores row tuples; instead it holds
*sources* — ``(columns, positions)`` pairs where ``columns`` maps each
bound :class:`~repro.blocks.terms.Column` to the underlying column list
of its base table (or materialized view) and ``positions`` is a
selection vector of row indices into those lists (``None`` meaning the
identity selection, i.e. the whole column untouched).

Filters therefore never copy data: they compose position vectors. A
hash join produces one pair of parallel position vectors (probe-side and
build-side match indices) and the joined batch simply carries both
sources. Actual cell values are gathered lazily — and cached — only for
the columns a kernel asks for, which for a typical aggregation query is
a small fraction of the joined width.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ...blocks.terms import Column
from ...errors import EvaluationError

#: A selection vector: row indices into a source's column lists.
Positions = Optional[list]


class Batch:
    """A multiset of rows in columnar form (see module docstring)."""

    __slots__ = ("length", "sources", "_gathered")

    def __init__(self, length: int, sources: list):
        self.length = length
        #: list of (columns: dict[Column, list], positions: Positions)
        self.sources = sources
        self._gathered: dict[Column, list] = {}

    @classmethod
    def from_columns(cls, columns: dict, length: int) -> "Batch":
        """A batch over one relation's columns, identity selection."""
        return cls(length, [(columns, None)])

    @classmethod
    def empty(cls, column_sets: Sequence[Sequence[Column]]) -> "Batch":
        """A zero-row batch that still binds every given column.

        Used when a constant-false predicate short-circuits the whole
        core table: downstream kernels must still resolve columns (to
        zero values), but no data need ever be scanned.
        """
        sources = [
            ({col: [] for col in cols}, None) for cols in column_sets
        ]
        return cls(0, sources)

    # ------------------------------------------------------------------

    def column(self, col: Column) -> list:
        """The gathered values of ``col``, one per batch row (cached)."""
        cached = self._gathered.get(col)
        if cached is not None:
            return cached
        for columns, positions in self.sources:
            data = columns.get(col)
            if data is not None:
                if positions is None:
                    gathered = data
                else:
                    gathered = [data[p] for p in positions]
                self._gathered[col] = gathered
                return gathered
        raise EvaluationError(f"unbound column {col}")

    def has_column(self, col: Column) -> bool:
        for columns, _positions in self.sources:
            if col in columns:
                return True
        return False

    def common_source(self, cols: Sequence[Column]):
        """The ``(columns, positions)`` source holding *all* of ``cols``.

        Returns ``None`` when the columns are spread across sources (or
        the list is empty). Grouping uses this to key groups by source
        position — one int per row — instead of materializing a key
        tuple per row.
        """
        if not cols:
            return None
        for source in self.sources:
            columns = source[0]
            if all(c in columns for c in cols):
                return source
        return None

    # ------------------------------------------------------------------

    def select(self, keep: list) -> "Batch":
        """The sub-batch at row indices ``keep`` (zero-copy compose)."""
        sources = []
        for columns, positions in self.sources:
            if positions is None:
                # Share ``keep`` across all identity sources: selection
                # vectors are immutable once built.
                sources.append((columns, keep))
            else:
                sources.append((columns, [positions[i] for i in keep]))
        return Batch(len(keep), sources)

    def join(
        self, other: "Batch", my_idx: Positions, other_idx: Positions
    ) -> "Batch":
        """The batch of matched row pairs (``my_idx[i]`` with ``other_idx[i]``).

        Either index may be ``None``, meaning the identity selection on
        that side (every row matched, in order) — its sources are
        carried over untouched, so no position vector is rewritten and
        previously gathered columns stay gathered.
        """
        length = len(my_idx) if my_idx is not None else len(other_idx)
        sources = []
        for columns, positions in self.sources:
            if my_idx is None:
                sources.append((columns, positions))
            elif positions is None:
                sources.append((columns, my_idx))
            else:
                sources.append((columns, [positions[i] for i in my_idx]))
        for columns, positions in other.sources:
            if other_idx is None:
                sources.append((columns, positions))
            elif positions is None:
                sources.append((columns, other_idx))
            else:
                sources.append(
                    (columns, [positions[i] for i in other_idx])
                )
        joined = Batch(length, sources)
        # An identity side's rows are unchanged and in order, so its
        # gather cache stays valid for the joined batch.
        if my_idx is None:
            joined._gathered.update(self._gathered)
        if other_idx is None:
            joined._gathered.update(other._gathered)
        return joined

    def cross(self, other: "Batch") -> "Batch":
        """The Cartesian product with ``other`` (position vectors only)."""
        n, m = self.length, other.length
        my_idx = [i for i in range(n) for _ in range(m)]
        other_idx = list(range(m)) * n
        return self.join(other, my_idx, other_idx)

    def rows(self, columns: Sequence[Column]) -> list:
        """Materialize row tuples for the given columns (final output)."""
        if not columns:
            return [()] * self.length
        gathered = [self.column(c) for c in columns]
        if len(gathered) == 1:
            return [(v,) for v in gathered[0]]
        return list(zip(*gathered))

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:
        return f"Batch({self.length} rows, {len(self.sources)} sources)"

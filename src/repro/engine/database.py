"""A database instance: base-table data plus view materialization.

The :class:`Database` binds a :class:`~repro.catalog.schema.Catalog` to
actual table contents, materializes catalog views on demand (memoized),
and evaluates query blocks. Rewritten queries may reference *local* views
(the auxiliary ``Va`` views built by step S4'/S5'); these are supplied per
call via ``extra_views``.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Union

from ..blocks.normalize import as_block
from ..blocks.query_block import QueryBlock, ViewDef
from ..catalog.schema import Catalog
from ..errors import EvaluationError, SchemaError
from .evaluator import evaluate_block
from .table import Table


class Database:
    """Catalog + data. The executable substrate for equivalence checks.

    ``engine`` is the default execution mode for every evaluation this
    database runs (``"row"``, ``"columnar"`` or ``"auto"``; see
    :func:`repro.engine.evaluator.evaluate_block` and
    ``docs/engine.md``); :meth:`execute` can override it per call.
    """

    def __init__(
        self,
        catalog: Catalog,
        tables: Optional[Mapping[str, Union[Table, Iterable]]] = None,
        engine: str = "auto",
    ):
        self.catalog = catalog
        self.engine = engine
        self._tables: dict[str, Table] = {}
        self._view_cache: dict[str, Table] = {}
        if tables:
            for name, data in tables.items():
                self.load(name, data)

    # ------------------------------------------------------------------

    def load(self, name: str, data: Union[Table, Iterable]) -> None:
        """Set the contents of a base table (rows or a prepared Table)."""
        schema = self.catalog.table(name)
        if isinstance(data, Table):
            table = data
        else:
            table = Table(schema.columns, data)
        if table.columns != schema.columns:
            raise SchemaError(
                f"table {name}: data columns {table.columns} do not match "
                f"schema {schema.columns}"
            )
        self._tables[name] = table
        self._view_cache.clear()

    def table(self, name: str) -> Table:
        if name not in self._tables:
            schema = self.catalog.table(name)  # raises if unknown
            self._tables[name] = Table(schema.columns, [])
        return self._tables[name]

    def append_rows(self, name: str, rows: Iterable) -> None:
        """Insert rows in place (O(delta); invalidates view caches)."""
        schema = self.catalog.table(name)
        table = self.table(name)
        width = len(schema.columns)
        for row in rows:
            row = tuple(row)
            if len(row) != width:
                raise SchemaError(
                    f"table {name}: row {row!r} has {len(row)} values for "
                    f"{width} columns"
                )
            table.rows.append(row)
        table.invalidate_columns()
        self._view_cache.clear()

    def remove_rows(self, name: str, rows: Iterable) -> None:
        """Delete one copy of each row in place; raises if absent."""
        from collections import Counter

        table = self.table(name)
        to_remove = Counter(tuple(r) for r in rows)
        kept = []
        for row in table.rows:
            if to_remove[row] > 0:
                to_remove[row] -= 1
            else:
                kept.append(row)
        missing = +to_remove
        if missing:
            raise SchemaError(
                f"table {name}: rows not present: {dict(missing)}"
            )
        table.rows[:] = kept
        table.invalidate_columns()
        self._view_cache.clear()

    # ------------------------------------------------------------------

    def materialize(self, view_name: str) -> Table:
        """Evaluate a catalog view's definition (memoized until data load)."""
        if view_name not in self._view_cache:
            view = self.catalog.view(view_name)
            result = self.execute(view.block)
            # Rows come straight from an executor: correctly shaped by
            # construction, so skip the validating copy (views can be
            # millions of rows).
            self._view_cache[view_name] = Table.from_rows(
                view.output_names, result.rows
            )
            self.catalog.set_row_count(view_name, len(result.rows))
        return self._view_cache[view_name]

    def execute(
        self,
        query: Union[str, QueryBlock, "NestedQuery"],
        extra_views: Optional[Mapping[str, ViewDef]] = None,
        engine: Optional[str] = None,
    ) -> Table:
        """Evaluate SQL text, a block or a nested query.

        ``extra_views`` supplies query-local view definitions (for example,
        the auxiliary views a rewriting introduces) that are visible only to
        this evaluation. A :class:`~repro.blocks.nested.NestedQuery`
        contributes its derived-table definitions the same way. SQL text
        containing FROM-clause subqueries is normalized via
        ``parse_nested_query`` automatically. ``engine`` overrides the
        database's default execution mode for this call only.
        """
        from ..blocks.nested import NestedQuery

        mode = engine if engine is not None else self.engine
        local = dict(extra_views or {})
        if isinstance(query, str):
            from ..blocks.nested import parse_nested_query

            query = parse_nested_query(query, self.catalog)
        if isinstance(query, NestedQuery):
            local.update(query.local_map())
            block = query.block
        else:
            block = as_block(query, self.catalog)
        resolving: set[str] = set()

        def resolve(name: str) -> Table:
            if name in local:
                if name in resolving:
                    raise EvaluationError(f"cyclic view reference {name}")
                resolving.add(name)
                try:
                    view = local[name]
                    result = evaluate_block(view.block, resolve, engine=mode)
                    return Table.from_rows(view.output_names, result.rows)
                finally:
                    resolving.discard(name)
            if self.catalog.is_view(name):
                return self.materialize(name)
            return self.table(name)

        return evaluate_block(block, resolve, engine=mode)

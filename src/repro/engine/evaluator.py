"""Evaluate a QueryBlock under SQL multiset semantics.

The evaluation pipeline follows the paper's two-phase reading (Section 5.1):
the FROM and WHERE clauses build the *core table* (a multiset), then
SELECT / GROUP BY / HAVING apply to it.

Grouping semantics match SQL'92:

* with GROUP BY, each distinct grouping-key combination present in the core
  table forms a group (an empty core table yields no rows);
* without GROUP BY but with aggregates, the whole core table is one group,
  and that single output row exists even for an empty core table
  (COUNT = 0, other aggregates NULL).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Mapping, Optional, Sequence

from ..blocks.exprs import Aggregate, Arith, Expr
from ..blocks.query_block import QueryBlock
from ..blocks.terms import Column, Comparison, Constant, Op
from ..errors import EvaluationError
from ..obs.metrics import current_metrics
from .aggregates import apply_aggregate
from .table import Row, Table

#: Resolves a FROM-clause relation name to its data.
RelationResolver = Callable[[str], Table]

#: Recognized values of the ``engine=`` mode switch.
ENGINES = ("row", "columnar", "auto")

#: ``engine="auto"`` picks the columnar executor once any FROM-clause
#: input reaches this many rows; below it, per-block kernel compilation
#: and column gathering cost more than they save and the row engine
#: wins. Chosen from the crossover region in ``bench_columnar.py``.
COLUMNAR_AUTO_THRESHOLD = 4096


def _compile_row_expr(expr: Expr, index: Mapping[Column, int]):
    """Compile a row-level expression to a row -> value function."""
    if isinstance(expr, Column):
        try:
            i = index[expr]
        except KeyError:
            raise EvaluationError(f"unbound column {expr}") from None
        return lambda row: row[i]
    if isinstance(expr, Constant):
        value = expr.value
        return lambda row: value
    if isinstance(expr, Arith):
        left = _compile_row_expr(expr.left, index)
        right = _compile_row_expr(expr.right, index)
        op = expr.op
        return lambda row: _arith(op, left(row), right(row))
    raise EvaluationError(f"not a row-level expression: {expr}")


def _arith(op, left, right):
    if left is None or right is None:
        return None
    if op.value == "/":
        if right == 0:
            # SQLite (the cross-check oracle) yields NULL for x / 0; a
            # rewriting can hit this via e.g. SUM(S) / SUM(N) over a
            # group whose counts sum to zero.
            return None
        if isinstance(left, int) and isinstance(right, int):
            return Fraction(left, right)
        return left / right
    return op.apply(left, right)


def _compile_predicate(atom: Comparison, index: Mapping[Column, int]):
    left = _compile_row_expr(atom.left, index)
    right = _compile_row_expr(atom.right, index)
    op = atom.op
    return lambda row: _compare(op, left(row), right(row))


def _compare(op: Op, left, right) -> bool:
    if left is None or right is None:
        return False  # SQL: comparisons with NULL are not true.
    try:
        return op.holds(left, right)
    except TypeError:
        raise EvaluationError(
            f"cannot compare {left!r} {op} {right!r}"
        ) from None


class _GroupEvaluator:
    """Evaluates group-level expressions for one group of core rows."""

    def __init__(
        self,
        rows: Sequence[Row],
        index: Mapping[Column, int],
        group_key: Mapping[Column, object],
    ):
        self.rows = rows
        self.index = index
        self.group_key = group_key
        self._agg_cache: dict[Aggregate, object] = {}

    def value(self, expr: Expr) -> object:
        if isinstance(expr, Column):
            if expr in self.group_key:
                return self.group_key[expr]
            # A bare column with no GROUP BY is only legal in a
            # non-aggregation context, which never reaches here.
            raise EvaluationError(
                f"column {expr} used outside GROUP BY in grouped query"
            )
        if isinstance(expr, Constant):
            return expr.value
        if isinstance(expr, Arith):
            return _arith(expr.op, self.value(expr.left), self.value(expr.right))
        if isinstance(expr, Aggregate):
            if expr not in self._agg_cache:
                arg = _compile_row_expr(expr.arg, self.index)
                values = [arg(row) for row in self.rows]
                self._agg_cache[expr] = apply_aggregate(expr.func, values)
            return self._agg_cache[expr]
        raise EvaluationError(f"cannot evaluate expression {expr}")

    def holds(self, atom: Comparison) -> bool:
        return _compare(atom.op, self.value(atom.left), self.value(atom.right))


def evaluate_block(
    block: QueryBlock,
    resolve: RelationResolver,
    engine: str = "auto",
) -> Table:
    """Evaluate ``block``; FROM names are resolved through ``resolve``.

    ``engine`` selects the execution strategy (see ``docs/engine.md``):

    * ``"row"`` — the original row-at-a-time interpreter below, kept as
      the parity oracle for the vectorized path;
    * ``"columnar"`` — the vectorized executor of
      :mod:`repro.engine.columnar` (identical answer multisets);
    * ``"auto"`` (default) — columnar once any input relation reaches
      :data:`COLUMNAR_AUTO_THRESHOLD` rows, row below it.

    The core table of the row path comes from the hash-join planner
    (:mod:`repro.engine.planner`); the naive product-then-filter path
    (:func:`_build_core`) is retained for the delta-maintenance module
    and as a reference implementation.
    """
    if engine not in ENGINES:
        raise EvaluationError(
            f"unknown engine {engine!r}: expected one of {ENGINES}"
        )
    metrics = current_metrics()
    requested = engine
    if engine != "row":
        # Resolve each FROM name once, whichever executor then runs:
        # re-resolving would re-evaluate query-local views per occurrence.
        cache: dict[str, Table] = {}
        raw_resolve = resolve

        def cached_resolve(name: str) -> Table:
            table = cache.get(name)
            if table is None:
                table = cache[name] = raw_resolve(name)
            return table

        if engine == "auto":
            sizes = [
                len(cached_resolve(rel.name).rows) for rel in block.from_
            ]
            engine = (
                "columnar"
                if sizes and max(sizes) >= COLUMNAR_AUTO_THRESHOLD
                else "row"
            )
            if metrics is not None:
                metrics.counter(
                    "repro_engine_auto_switch_total",
                    "engine=auto decisions, by chosen executor.",
                    ("chosen",),
                ).labels(engine).inc()
        resolve = cached_resolve
        if engine == "columnar":
            from .columnar import evaluate_block_columnar

            if metrics is not None:
                _count_dispatch(metrics, "columnar", requested)
            return evaluate_block_columnar(block, resolve)

    if metrics is not None:
        _count_dispatch(metrics, "row", requested)

    from .planner import build_core

    core_rows, index = build_core(block, resolve)

    if block.is_aggregation:
        result = _evaluate_grouped(block, core_rows, index)
    else:
        compiled = [
            _compile_row_expr(item.expr, index) for item in block.select
        ]
        result = Table(
            block.output_names(),
            [tuple(fn(row) for fn in compiled) for row in core_rows],
        )
    if block.distinct:
        result = result.distinct()
    return result


def _count_dispatch(metrics, engine: str, requested: str) -> None:
    metrics.counter(
        "repro_engine_blocks_total",
        "Query blocks evaluated, by executor and how it was requested.",
        ("engine", "requested"),
    ).labels(engine, requested).inc()


def _build_core(
    block: QueryBlock, resolve: RelationResolver
) -> tuple[list[Row], dict[Column, int]]:
    """Cross product of the FROM-clause relations (the core table)."""
    index: dict[Column, int] = {}
    rows: list[Row] = [()]
    offset = 0
    for rel in block.from_:
        data = resolve(rel.name)
        if len(data.columns) != len(rel.columns):
            raise EvaluationError(
                f"relation {rel.name}: expected {len(rel.columns)} columns, "
                f"data has {len(data.columns)}"
            )
        for i, col in enumerate(rel.columns):
            index[col] = offset + i
        offset += len(rel.columns)
        if not data.rows:
            rows = []
            # Keep filling the index for later relations.
            continue
        rows = [left + right for left in rows for right in data.rows]
    return rows, index


def _evaluate_grouped(
    block: QueryBlock, core_rows: list[Row], index: dict[Column, int]
) -> Table:
    group_cols = block.group_by
    groups: dict[tuple, list[Row]] = {}
    if group_cols:
        key_indexes = [index[c] for c in group_cols]
        for row in core_rows:
            key = tuple(row[i] for i in key_indexes)
            groups.setdefault(key, []).append(row)
    else:
        # A single group that exists even when the core table is empty.
        groups[()] = list(core_rows)

    metrics = current_metrics()
    if metrics is not None:
        metrics.counter(
            "repro_engine_rows_grouped_total",
            "Core rows fed into grouped aggregation, by executor.",
            ("engine",),
        ).labels("row").inc(len(core_rows))
        metrics.counter(
            "repro_engine_groups_total",
            "Groups formed by grouped aggregation, by executor.",
            ("engine",),
        ).labels("row").inc(len(groups))

    out_rows: list[Row] = []
    for key, rows in groups.items():
        key_map = dict(zip(group_cols, key))
        evaluator = _GroupEvaluator(rows, index, key_map)
        if all(evaluator.holds(atom) for atom in block.having):
            out_rows.append(
                tuple(evaluator.value(item.expr) for item in block.select)
            )
    return Table(block.output_names(), out_rows)

"""SQL aggregate function semantics.

Values are Python ints, floats, Fractions or strings. ``None`` models SQL
NULL: base data has no NULLs (matching the paper's setting), but a scalar
aggregate over an empty input produces one, and queries over such a view
feed it back into aggregates — so, per SQL'92 (and SQLite, the oracle
backend), every aggregate *skips* NULL inputs, and MIN/MAX/SUM/AVG over
nothing but NULLs is NULL. AVG over integers is exact (a Fraction), so
multiset-equivalence checks are never defeated by floating-point rounding.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Optional, Sequence

from ..blocks.exprs import AggFunc


def _non_null(values: Sequence) -> list:
    return [v for v in values if v is not None]


def agg_min(values: Sequence) -> Optional[object]:
    values = _non_null(values)
    return min(values) if values else None


def agg_max(values: Sequence) -> Optional[object]:
    values = _non_null(values)
    return max(values) if values else None


def agg_sum(values: Sequence) -> Optional[object]:
    values = _non_null(values)
    if not values:
        return None  # SQL: SUM over an empty group is NULL, not 0.
    total = values[0]
    for value in values[1:]:
        total = total + value
    return total


def agg_count(values: Sequence) -> int:
    return sum(1 for v in values if v is not None)


def agg_avg(values: Sequence) -> Optional[object]:
    values = _non_null(values)
    if not values:
        return None
    total = agg_sum(values)
    if isinstance(total, int):
        return Fraction(total, len(values))
    return total / len(values)


_DISPATCH = {
    AggFunc.MIN: agg_min,
    AggFunc.MAX: agg_max,
    AggFunc.SUM: agg_sum,
    AggFunc.COUNT: agg_count,
    AggFunc.AVG: agg_avg,
}


def apply_aggregate(func: AggFunc, values: Sequence) -> object:
    """Apply an aggregate function to the multiset of argument values."""
    return _DISPATCH[func](values)

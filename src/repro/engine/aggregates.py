"""SQL aggregate function semantics.

Values are Python ints, floats, Fractions or strings. ``None`` models SQL
NULL: base data has no NULLs (matching the paper's setting), but a scalar
aggregate over an empty input produces one, and queries over such a view
feed it back into aggregates — so, per SQL'92 (and SQLite, the oracle
backend), every aggregate *skips* NULL inputs, and MIN/MAX/SUM/AVG over
nothing but NULLs is NULL. AVG over integers is exact (a Fraction), so
multiset-equivalence checks are never defeated by floating-point rounding.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Optional, Sequence

from ..blocks.exprs import AggFunc


def _non_null(values: Sequence) -> list:
    return [v for v in values if v is not None]


def agg_min(values: Sequence) -> Optional[object]:
    values = _non_null(values)
    return min(values) if values else None


def agg_max(values: Sequence) -> Optional[object]:
    values = _non_null(values)
    return max(values) if values else None


def agg_sum(values: Sequence) -> Optional[object]:
    values = _non_null(values)
    if not values:
        return None  # SQL: SUM over an empty group is NULL, not 0.
    total = values[0]
    for value in values[1:]:
        total = total + value
    return total


def agg_count(values: Sequence) -> int:
    return sum(1 for v in values if v is not None)


def agg_avg(values: Sequence) -> Optional[object]:
    values = _non_null(values)
    if not values:
        return None
    total = agg_sum(values)
    if isinstance(total, int):
        return Fraction(total, len(values))
    return total / len(values)


_DISPATCH = {
    AggFunc.MIN: agg_min,
    AggFunc.MAX: agg_max,
    AggFunc.SUM: agg_sum,
    AggFunc.COUNT: agg_count,
    AggFunc.AVG: agg_avg,
}


def apply_aggregate(func: AggFunc, values: Sequence) -> object:
    """Apply an aggregate function to the multiset of argument values."""
    return _DISPATCH[func](values)


# ----------------------------------------------------------------------
# Per-group accumulation kernels (the columnar engine's grouped path)
# ----------------------------------------------------------------------
#
# Each kernel folds one aggregate over a whole argument column in a
# single pass, indexed by dense group ids, instead of gathering a value
# list per group and calling the scalar functions above. NULL-skipping
# semantics are identical: a group whose inputs are all NULL gets NULL
# (COUNT gets 0), exactly as the scalar functions produce.


def sum_by_group(gids: Sequence, values: Sequence, ngroups: int) -> list:
    out: list = [None] * ngroups
    for g, v in zip(gids, values):
        if v is not None:
            cur = out[g]
            out[g] = v if cur is None else cur + v
    return out


def count_by_group(gids: Sequence, values: Sequence, ngroups: int) -> list:
    out = [0] * ngroups
    for g, v in zip(gids, values):
        if v is not None:
            out[g] += 1
    return out


def min_by_group(gids: Sequence, values: Sequence, ngroups: int) -> list:
    out: list = [None] * ngroups
    for g, v in zip(gids, values):
        if v is not None:
            cur = out[g]
            if cur is None or v < cur:
                out[g] = v
    return out


def max_by_group(gids: Sequence, values: Sequence, ngroups: int) -> list:
    out: list = [None] * ngroups
    for g, v in zip(gids, values):
        if v is not None:
            cur = out[g]
            if cur is None or v > cur:
                out[g] = v
    return out


def avg_by_group(gids: Sequence, values: Sequence, ngroups: int) -> list:
    sums = sum_by_group(gids, values, ngroups)
    counts = count_by_group(gids, values, ngroups)
    out: list = [None] * ngroups
    for g in range(ngroups):
        total, count = sums[g], counts[g]
        if count:
            if isinstance(total, int):
                out[g] = Fraction(total, count)
            else:
                out[g] = total / count
    return out


_GROUP_DISPATCH = {
    AggFunc.MIN: min_by_group,
    AggFunc.MAX: max_by_group,
    AggFunc.SUM: sum_by_group,
    AggFunc.COUNT: count_by_group,
    AggFunc.AVG: avg_by_group,
}


def accumulate_by_group(
    func: AggFunc, gids: Sequence, values: Sequence, ngroups: int
) -> list:
    """Fold ``func`` over ``values`` per group in one pass.

    ``gids`` assigns each value a dense group id in ``range(ngroups)``;
    the result list holds one aggregate value per group.
    """
    return _GROUP_DISPATCH[func](gids, values, ngroups)

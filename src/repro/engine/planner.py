"""Join planning for the core-table phase: pushdown + greedy hash joins.

The naive core-table construction materializes the full Cartesian product
before filtering — quadratic pain exactly where the paper's motivating
workloads live (fact-table joins). This planner keeps the same multiset
semantics while:

* pushing single-relation predicates into the scans;
* joining relations in a greedy order (smallest filtered relation first,
  preferring relations connected by equality predicates);
* executing connected joins as hash joins on the equality columns;
* applying remaining predicates as soon as their columns are bound.

The result is exactly the filtered core-table multiset; grouping and
SELECT evaluation downstream are unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..blocks.query_block import QueryBlock
from ..blocks.terms import Column, Comparison, Constant, Op
from ..obs.metrics import current_metrics
from .table import Row, Table

RelationResolver = Callable[[str], Table]


@dataclass
class ClassifiedPredicates:
    """The WHERE clause split by how early each atom can run.

    Shared by the row-at-a-time path below and the columnar executor
    (:mod:`repro.engine.columnar.executor`), so both engines make
    identical pushdown and join-order decisions.
    """

    #: Single-relation atoms, pushed into that relation's scan.
    local: dict[int, list[Comparison]] = field(default_factory=dict)
    #: ``(owner_a, owner_b, col_a, col_b)`` equality edges (hash joins).
    equi_joins: list[tuple[int, int, Column, Column]] = field(
        default_factory=list
    )
    #: Atoms spanning relations without being equi-join edges; applied
    #: as soon as all their columns are bound.
    deferred: list[Comparison] = field(default_factory=list)
    #: True when a constant-only atom decides the whole block to empty.
    contradiction: bool = False


def classify_predicates(
    block: QueryBlock, owner_of: dict[Column, int]
) -> ClassifiedPredicates:
    """Split ``block.where`` into local / equi-join / deferred atoms."""
    out = ClassifiedPredicates(
        local={i: [] for i in range(len(block.from_))}
    )
    for atom in block.where:
        cols = [
            side
            for side in (atom.left, atom.right)
            if isinstance(side, Column)
        ]
        owners = {owner_of[c] for c in cols}
        if not owners:
            # Constant-only atom: decide it once.
            left = atom.left.value if isinstance(atom.left, Constant) else None
            right = (
                atom.right.value if isinstance(atom.right, Constant) else None
            )
            if not atom.op.holds(left, right):
                out.contradiction = True
            continue
        if len(owners) == 1:
            out.local[owners.pop()].append(atom)
        elif (
            atom.op is Op.EQ
            and len(cols) == 2
            and len(owners) == 2
        ):
            out.equi_joins.append(
                (owner_of[cols[0]], owner_of[cols[1]], cols[0], cols[1])
            )
        else:
            out.deferred.append(atom)
    return out


def greedy_join_order(
    sizes: Sequence[int],
    equi_joins: Sequence[tuple[int, int, Column, Column]],
) -> list[int]:
    """Smallest-first join order, preferring equi-connected relations."""
    n = len(sizes)
    remaining = set(range(n))
    order: list[int] = []
    start = min(remaining, key=lambda i: sizes[i])
    order.append(start)
    remaining.discard(start)
    while remaining:
        connected = [
            i
            for i in remaining
            if any(
                (a in (i,) and b in order) or (b in (i,) and a in order)
                for a, b, _l, _r in equi_joins
            )
        ]
        pool = connected or sorted(remaining)
        nxt = min(pool, key=lambda i: sizes[i])
        order.append(nxt)
        remaining.discard(nxt)
    return order


def build_core(
    block: QueryBlock, resolve: RelationResolver
) -> tuple[list[Row], dict[Column, int]]:
    """The filtered core table of ``block`` plus its column index."""
    from .evaluator import _compile_predicate, _compile_row_expr  # cycle

    n = len(block.from_)
    owner_of: dict[Column, int] = {}
    for i, rel in enumerate(block.from_):
        for col in rel.columns:
            owner_of[col] = i

    # The global column index (column -> position in the output tuples) is
    # fixed up front; per-step indexes map into partial tuples.
    index: dict[Column, int] = {}
    offset = 0
    for rel in block.from_:
        for j, col in enumerate(rel.columns):
            index[col] = offset + j
        offset += len(rel.columns)

    classified = classify_predicates(block, owner_of)
    if classified.contradiction:
        return [], index
    local = classified.local
    equi_joins = classified.equi_joins
    deferred = classified.deferred

    # ------------------------------------------------------------------
    # Scan + local filter each relation.
    # ------------------------------------------------------------------
    metrics = current_metrics()
    rows_scanned = 0
    scans: list[list[Row]] = []
    for i, rel in enumerate(block.from_):
        data = resolve(rel.name)
        rows_scanned += len(data.rows)
        if len(data.columns) != len(rel.columns):
            from ..errors import EvaluationError

            raise EvaluationError(
                f"relation {rel.name}: expected {len(rel.columns)} "
                f"columns, data has {len(data.columns)}"
            )
        rows = data.rows
        if local[i]:
            scan_index = {col: j for j, col in enumerate(rel.columns)}
            predicates = [
                _compile_predicate(atom, scan_index) for atom in local[i]
            ]
            rows = [
                row
                for row in rows
                if all(predicate(row) for predicate in predicates)
            ]
        scans.append(rows)

    # ------------------------------------------------------------------
    # Greedy join order.
    # ------------------------------------------------------------------
    remaining = set(range(n))
    order: list[int] = []
    start = min(remaining, key=lambda i: len(scans[i]))
    order.append(start)
    remaining.discard(start)
    while remaining:
        connected = [
            i
            for i in remaining
            if any(
                (a in (i,) and b in order) or (b in (i,) and a in order)
                for a, b, _l, _r in equi_joins
            )
        ]
        pool = connected or sorted(remaining)
        nxt = min(pool, key=lambda i: len(scans[i]))
        order.append(nxt)
        remaining.discard(nxt)

    # ------------------------------------------------------------------
    # Execute: hash joins along the order, deferred filters ASAP.
    # ------------------------------------------------------------------
    bound: set[int] = {order[0]}
    positions: dict[Column, int] = {
        col: j for j, col in enumerate(block.from_[order[0]].columns)
    }
    current: list[Row] = list(scans[order[0]])
    pending = list(deferred)
    current, pending = _apply_ready(
        current, pending, positions, _compile_predicate
    )

    for idx in order[1:]:
        rel = block.from_[idx]
        rel_positions = {col: j for j, col in enumerate(rel.columns)}
        # Every equality atom linking the new relation to the bound set
        # becomes part of the hash key: (new-relation column, bound column).
        edges: list[tuple[Column, Column]] = []
        for a, b, l, r in equi_joins:
            if a == idx and b in bound:
                edges.append((l, r))
            elif b == idx and a in bound:
                edges.append((r, l))
        if edges and current:
            build: dict[tuple, list[Row]] = {}
            new_key = [rel_positions[c] for c, _b in edges]
            for row in scans[idx]:
                key = tuple(row[p] for p in new_key)
                if None in key:
                    continue  # SQL: NULL = anything is not true
                build.setdefault(key, []).append(row)
            probe_key = [positions[b] for _c, b in edges]
            joined: list[Row] = []
            for row in current:
                key = tuple(row[p] for p in probe_key)
                if None in key:
                    continue
                matches = build.get(key)
                if matches:
                    joined.extend(row + other for other in matches)
            current = joined
        else:
            current = [
                row + other for row in current for other in scans[idx]
            ]
        base = len(positions)
        for col, j in rel_positions.items():
            positions[col] = base + j
        bound.add(idx)
        current, pending = _apply_ready(
            current, pending, positions, _compile_predicate
        )

    if metrics is not None:
        metrics.counter(
            "repro_engine_rows_scanned_total",
            "Base-relation rows read while building core tables.",
            ("engine",),
        ).labels("row").inc(rows_scanned)
        metrics.counter(
            "repro_engine_rows_joined_total",
            "Core-table rows produced by the join phase.",
            ("engine",),
        ).labels("row").inc(len(current))

    # Re-order tuple positions to the canonical block layout.
    if positions != index:
        permutation = [0] * len(index)
        for col, pos in index.items():
            permutation[pos] = positions[col]
        current = [
            tuple(row[p] for p in permutation) for row in current
        ]
    return current, index


def _apply_ready(rows, pending, positions, compile_predicate):
    """Apply every pending predicate whose columns are all bound."""
    from ..blocks.exprs import columns_in

    ready, still = [], []
    for atom in pending:
        cols = list(columns_in(atom.left)) + list(columns_in(atom.right))
        if all(c in positions for c in cols):
            ready.append(atom)
        else:
            still.append(atom)
    for atom in ready:
        predicate = compile_predicate(atom, positions)
        rows = [row for row in rows if predicate(row)]
    return rows, still

"""In-memory multiset tables.

SQL tables and query results are *multisets* of tuples (paper Section 1);
:class:`Table` stores rows in a list and compares as a multiset.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Iterator, Optional, Sequence

from ..errors import EvaluationError

Row = tuple


class Table:
    """A named header plus a multiset of rows."""

    __slots__ = ("columns", "rows", "_col_cache")

    def __init__(self, columns: Sequence[str], rows: Iterable[Sequence] = ()):
        self.columns: tuple[str, ...] = tuple(columns)
        self.rows: list[Row] = [tuple(r) for r in rows]
        self._col_cache: Optional[tuple[int, list[list]]] = None
        width = len(self.columns)
        for row in self.rows:
            if len(row) != width:
                raise EvaluationError(
                    f"row {row!r} has {len(row)} values for {width} columns"
                )

    @classmethod
    def from_rows(
        cls, columns: Sequence[str], rows: list[Row]
    ) -> "Table":
        """Adopt an already-validated list of row tuples (no copying).

        Internal fast path for the executors, which produce correctly
        shaped tuples by construction; external callers should use the
        validating constructor.
        """
        table = cls.__new__(cls)
        table.columns = tuple(columns)
        table.rows = rows
        table._col_cache = None
        return table

    # ------------------------------------------------------------------
    # Columnar representation
    # ------------------------------------------------------------------

    def as_columns(self) -> list[list]:
        """The table transposed: one value list per column (cached).

        The columnar engine reads these lists in place and selects into
        them with position vectors, so they must be treated as
        immutable. The cache is guarded by row count and invalidated by
        the :class:`~repro.engine.database.Database` mutators; code that
        mutates ``rows`` in place directly must call
        :meth:`invalidate_columns`.
        """
        cached = self._col_cache
        if cached is not None and cached[0] == len(self.rows):
            return cached[1]
        if self.rows:
            data = [list(col) for col in zip(*self.rows)]
        else:
            data = [[] for _ in self.columns]
        self._col_cache = (len(self.rows), data)
        return data

    def invalidate_columns(self) -> None:
        """Drop the cached columnar transposition after a row mutation."""
        self._col_cache = None

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def __repr__(self) -> str:
        return f"Table({self.columns!r}, {len(self.rows)} rows)"

    def column_index(self, name: str) -> int:
        try:
            return self.columns.index(name)
        except ValueError:
            raise EvaluationError(
                f"no column {name!r} in {self.columns}"
            ) from None

    def column_values(self, name: str) -> list:
        idx = self.column_index(name)
        return [row[idx] for row in self.rows]

    def as_counter(self) -> Counter:
        """The multiset of rows as a Counter (hash-based comparison)."""
        return Counter(self.rows)

    def distinct(self) -> "Table":
        """A copy with duplicate rows removed (stable order)."""
        seen: set[Row] = set()
        rows = []
        for row in self.rows:
            if row not in seen:
                seen.add(row)
                rows.append(row)
        return Table(self.columns, rows)

    @property
    def is_set(self) -> bool:
        """True when no row occurs more than once."""
        return len(set(self.rows)) == len(self.rows)

    # ------------------------------------------------------------------
    # Comparison
    # ------------------------------------------------------------------

    def multiset_equal(self, other: "Table") -> bool:
        """Multiset equality of rows (headers may differ: equivalence of
        queries is about the multiset of answers, not output names).

        Builds a single Counter over ``self`` and drains it with one
        pass over ``other`` — rather than materializing both counters —
        with an early exit on the first row of ``other`` that ``self``
        cannot supply. On large disagreeing tables this returns after
        touching a fraction of the data (micro-benchmark:
        ``benchmarks/bench_engine.py::test_multiset_equal_large``).
        """
        if len(self.rows) != len(other.rows):
            return False
        counts = self.as_counter()
        for row in other.rows:
            remaining = counts.get(row, 0)
            if not remaining:
                return False
            counts[row] = remaining - 1
        # Equal lengths and every decrement succeeded: the multisets match.
        return True

    def set_equal(self, other: "Table") -> bool:
        """Set equality of rows (Section 5 set-semantics comparisons)."""
        return set(self.rows) == set(other.rows)

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------

    def to_text(self, limit: Optional[int] = 20) -> str:
        """A fixed-width rendering for examples and docs."""
        shown = self.rows if limit is None else self.rows[:limit]
        cells = [[str(v) for v in row] for row in shown]
        widths = [len(c) for c in self.columns]
        for row in cells:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [
            " | ".join(c.ljust(w) for c, w in zip(self.columns, widths)),
            "-+-".join("-" * w for w in widths),
        ]
        for row in cells:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        hidden = len(self.rows) - len(shown)
        if hidden > 0:
            lines.append(f"... ({hidden} more rows)")
        return "\n".join(lines)

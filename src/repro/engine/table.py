"""In-memory multiset tables.

SQL tables and query results are *multisets* of tuples (paper Section 1);
:class:`Table` stores rows in a list and compares as a multiset.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Iterator, Optional, Sequence

from ..errors import EvaluationError

Row = tuple


class Table:
    """A named header plus a multiset of rows."""

    __slots__ = ("columns", "rows")

    def __init__(self, columns: Sequence[str], rows: Iterable[Sequence] = ()):
        self.columns: tuple[str, ...] = tuple(columns)
        self.rows: list[Row] = [tuple(r) for r in rows]
        width = len(self.columns)
        for row in self.rows:
            if len(row) != width:
                raise EvaluationError(
                    f"row {row!r} has {len(row)} values for {width} columns"
                )

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def __repr__(self) -> str:
        return f"Table({self.columns!r}, {len(self.rows)} rows)"

    def column_index(self, name: str) -> int:
        try:
            return self.columns.index(name)
        except ValueError:
            raise EvaluationError(
                f"no column {name!r} in {self.columns}"
            ) from None

    def column_values(self, name: str) -> list:
        idx = self.column_index(name)
        return [row[idx] for row in self.rows]

    def as_counter(self) -> Counter:
        """The multiset of rows as a Counter (hash-based comparison)."""
        return Counter(self.rows)

    def distinct(self) -> "Table":
        """A copy with duplicate rows removed (stable order)."""
        seen: set[Row] = set()
        rows = []
        for row in self.rows:
            if row not in seen:
                seen.add(row)
                rows.append(row)
        return Table(self.columns, rows)

    @property
    def is_set(self) -> bool:
        """True when no row occurs more than once."""
        return len(set(self.rows)) == len(self.rows)

    # ------------------------------------------------------------------
    # Comparison
    # ------------------------------------------------------------------

    def multiset_equal(self, other: "Table") -> bool:
        """Multiset equality of rows (headers may differ: equivalence of
        queries is about the multiset of answers, not output names)."""
        if len(self.rows) != len(other.rows):
            return False
        return self.as_counter() == other.as_counter()

    def set_equal(self, other: "Table") -> bool:
        """Set equality of rows (Section 5 set-semantics comparisons)."""
        return set(self.rows) == set(other.rows)

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------

    def to_text(self, limit: Optional[int] = 20) -> str:
        """A fixed-width rendering for examples and docs."""
        shown = self.rows if limit is None else self.rows[:limit]
        cells = [[str(v) for v in row] for row in shown]
        widths = [len(c) for c in self.columns]
        for row in cells:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [
            " | ".join(c.ljust(w) for c, w in zip(self.columns, widths)),
            "-+-".join("-" * w for w in widths),
        ]
        for row in cells:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        hidden = len(self.rows) - len(shown)
        if hidden > 0:
            lines.append(f"... ({hidden} more rows)")
        return "\n".join(lines)

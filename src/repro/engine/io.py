"""CSV persistence for tables and databases.

Lets the CLI (and users) run queries over on-disk data: a database
directory holds one ``<table>.csv`` per base table, headers matching the
schema. Values are parsed as int, then float, then kept as strings —
matching the engine's dynamically typed data model.
"""

from __future__ import annotations

import csv
import os
from typing import Union

from ..catalog.schema import Catalog
from ..errors import SchemaError
from .database import Database
from .table import Table


def _parse_value(text: str) -> Union[int, float, str]:
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def read_table_csv(path: str, expected_columns=None) -> Table:
    """Read one CSV file (with header) into a Table."""
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise SchemaError(f"{path}: empty file (missing header)") from None
        header = tuple(h.strip() for h in header)
        if expected_columns is not None and header != tuple(expected_columns):
            raise SchemaError(
                f"{path}: header {header} does not match schema "
                f"{tuple(expected_columns)}"
            )
        rows = [tuple(_parse_value(cell) for cell in row) for row in reader]
    table = Table(header, rows)
    # CSV-backed tables are load-once-query-many: prime the columnar
    # transposition now so the first columnar query doesn't pay for it.
    table.as_columns()
    return table


def write_table_csv(path: str, table: Table) -> None:
    """Write a Table as CSV with a header row."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.columns)
        writer.writerows(table.rows)


def load_database(catalog: Catalog, directory: str) -> Database:
    """Build a Database from ``<table>.csv`` files in ``directory``.

    Tables without a file start empty; files without a schema entry are
    an error (they would silently be ignored otherwise).
    """
    db = Database(catalog)
    known = set(catalog.tables)
    for entry in sorted(os.listdir(directory)):
        if not entry.endswith(".csv"):
            continue
        name = entry[: -len(".csv")]
        if name not in known:
            raise SchemaError(
                f"{entry}: no table named {name!r} in the schema"
            )
        schema = catalog.table(name)
        table = read_table_csv(
            os.path.join(directory, entry), schema.columns
        )
        db.load(name, table)
        if len(table):
            # Keep the cost model honest about actual sizes.
            catalog.set_table_row_count(name, len(table))
    return db


def save_database(db: Database, directory: str) -> None:
    """Write every base table of ``db`` as CSV into ``directory``."""
    os.makedirs(directory, exist_ok=True)
    for name in db.catalog.tables:
        write_table_csv(
            os.path.join(directory, f"{name}.csv"), db.table(name)
        )

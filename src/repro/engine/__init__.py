"""In-memory multiset relational engine (the evaluation substrate)."""

from .aggregates import apply_aggregate
from .database import Database
from .evaluator import evaluate_block
from .table import Table

__all__ = ["apply_aggregate", "Database", "evaluate_block", "Table"]

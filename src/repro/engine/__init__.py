"""In-memory multiset relational engine (the evaluation substrate).

Two executors share one semantics: the row-at-a-time interpreter
(:mod:`repro.engine.evaluator`) and the vectorized columnar engine
(:mod:`repro.engine.columnar`). The ``engine=`` mode switch on
:func:`evaluate_block` / :meth:`Database.execute` selects between them
(``"row"``, ``"columnar"``, ``"auto"``); see ``docs/engine.md``.
"""

from .aggregates import accumulate_by_group, apply_aggregate
from .database import Database
from .evaluator import COLUMNAR_AUTO_THRESHOLD, ENGINES, evaluate_block
from .table import Table

__all__ = [
    "COLUMNAR_AUTO_THRESHOLD",
    "ENGINES",
    "accumulate_by_group",
    "apply_aggregate",
    "Database",
    "evaluate_block",
    "Table",
]

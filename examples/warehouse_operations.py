#!/usr/bin/env python3
"""Operating a warehouse end to end: choose views, keep them fresh,
answer queries from them.

Combines the three subsystems the paper's warehouse story needs:

1. the **advisor** (Section 7 future work) picks which summary views to
   materialize for the analyst workload under a storage budget;
2. the **maintainer** keeps those views fresh as call records stream in
   ([BLT86, GMS93] substrate);
3. the **rewriter** (the paper's core) answers each analyst query from
   the freshest summaries, verified against direct evaluation.

Run:  python examples/warehouse_operations.py
"""

import random
import time

from repro import Database, RewriteEngine, recommend_views
from repro.maintenance import MaintainedView, apply_change
from repro.workloads import telephony

WORKLOAD = [
    "SELECT Calls.Plan_Id, SUM(Charge) FROM Calls WHERE Year = 1995 GROUP BY Calls.Plan_Id",
    "SELECT Calls.Plan_Id, Month, COUNT(Charge) FROM Calls GROUP BY Calls.Plan_Id, Month",
    "SELECT Year, AVG(Charge) FROM Calls GROUP BY Year",
]


def main() -> None:
    workload_gen = telephony.generate(n_calls=8_000, seed=31)
    catalog = workload_gen.catalog

    # ------------------------------------------------------------------
    print("1. Advisor: choosing summary views (budget: 2,000 rows)")
    recommendation = recommend_views(
        catalog, WORKLOAD, space_budget_rows=2_000
    )
    print(recommendation.summary())

    # ------------------------------------------------------------------
    print("\n2. Materializing and wiring incremental maintenance")
    db = Database(catalog, workload_gen.tables)
    engine = RewriteEngine(catalog)
    maintainers = []
    for view in recommendation.views:
        engine.add_view(view)
        maintainer = MaintainedView(view, db)
        maintainers.append(maintainer)
        print(
            f"   {view.name}: {len(maintainer.table())} rows materialized"
        )

    # ------------------------------------------------------------------
    print("\n3. Streaming 500 new call records through the maintainers")
    rng = random.Random(7)
    start = time.perf_counter()
    for i in range(500):
        call = (
            9_000_000 + i,
            rng.randrange(100),
            rng.randrange(8),
            rng.randint(1, 28),
            rng.randint(1, 12),
            rng.choice([1994, 1995]),
            rng.randint(1, 500),
        )
        # Every maintainer observes the change against the pre-change
        # state, then the shared database mutates once.
        apply_change(maintainers, "Calls", inserts=[call])
    elapsed = time.perf_counter() - start
    print(f"   maintained {len(maintainers)} views over 500 inserts "
          f"in {elapsed * 1000:.1f} ms")
    for maintainer in maintainers:
        assert maintainer.consistency_check()
    print("   consistency check against full recompute: OK")

    # ------------------------------------------------------------------
    print("\n4. Answering the workload from the fresh summaries\n")
    for sql in WORKLOAD:
        best = engine.rewrite(sql).best()
        assert best is not None
        # Serve the maintained table instead of re-materializing.
        for maintainer in maintainers:
            if maintainer.view.name in best.view_names:
                db._view_cache[maintainer.view.name] = maintainer.table()  # noqa: SLF001

        start = time.perf_counter()
        via_view = db.execute(best.query, extra_views=best.extra_views())
        t_view = time.perf_counter() - start
        start = time.perf_counter()
        direct = db.execute(sql)
        t_direct = time.perf_counter() - start
        assert direct.multiset_equal(via_view)
        print(
            f"   [{sql.strip().splitlines()[0][:60]}...]"
            if len(sql) > 60
            else f"   [{sql.strip()}]"
        )
        print(
            f"      via {', '.join(best.view_names)}: "
            f"{t_view * 1000:.2f} ms vs direct {t_direct * 1000:.2f} ms "
            f"({t_direct / t_view:,.0f}x), answers match"
        )


if __name__ == "__main__":
    main()

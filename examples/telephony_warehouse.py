#!/usr/bin/env python3
"""Data-warehouse scenario: a batch of analyst queries against summary
tables, with cost-based selection among candidate rewritings.

This is the paper's primary application (Section 1: "very large
transaction recording systems ... queries may be answered more
efficiently by materializing and maintaining appropriately defined
aggregate views (summary tables)").

Run:  python examples/telephony_warehouse.py
"""

import time

from repro import RewriteEngine
from repro.bench.harness import ResultTable
from repro.workloads import telephony

ANALYST_QUERIES = {
    "plan revenue 1995": """
        SELECT Calls.Plan_Id, SUM(Charge)
        FROM Calls WHERE Year = 1995 GROUP BY Calls.Plan_Id
    """,
    "plan x month volume": """
        SELECT Calls.Plan_Id, Month, COUNT(Charge)
        FROM Calls GROUP BY Calls.Plan_Id, Month
    """,
    "yearly totals": """
        SELECT Year, SUM(Charge) FROM Calls GROUP BY Year
    """,
    "average charge per plan": """
        SELECT Calls.Plan_Id, AVG(Charge) FROM Calls GROUP BY Calls.Plan_Id
    """,
    "per-customer detail (not answerable)": """
        SELECT Cust_Id, SUM(Charge) FROM Calls GROUP BY Cust_Id
    """,
}

SUMMARY_VIEW = """
    CREATE VIEW Plan_Month_Summary
        (Plan_Id, Month, Year, Revenue, Volume) AS
    SELECT Calls.Plan_Id, Month, Year, SUM(Charge), COUNT(Charge)
    FROM Calls
    GROUP BY Calls.Plan_Id, Month, Year
"""


def main() -> None:
    workload = telephony.generate(n_calls=15_000, seed=21)
    catalog = workload.catalog
    engine = RewriteEngine(catalog)
    engine.add_view(SUMMARY_VIEW, row_count=400)

    db = workload.database()
    db.materialize("Plan_Month_Summary")

    report = ResultTable(
        "warehouse query batch (times in ms)",
        ["query", "rewritten?", "t_direct", "t_via_view", "speedup"],
    )
    for name, sql in ANALYST_QUERIES.items():
        result = engine.rewrite(sql)

        start = time.perf_counter()
        direct = db.execute(result.query)
        t_direct = (time.perf_counter() - start) * 1000

        best = result.best()
        if best is None:
            report.add(name, "no", round(t_direct, 2), "-", "-")
            continue

        start = time.perf_counter()
        via_view = db.execute(best.query, extra_views=best.extra_views())
        t_view = (time.perf_counter() - start) * 1000

        assert direct.multiset_equal(via_view), name
        report.add(
            name,
            "yes",
            round(t_direct, 2),
            round(t_view, 2),
            f"{t_direct / t_view:,.0f}x",
        )
    report.show()

    print(
        "\nEvery rewritten answer was checked multiset-equal to the "
        "direct answer."
    )
    print("Example rewriting chosen for 'yearly totals':\n")
    print(engine.rewrite(ANALYST_QUERIES["yearly totals"]).best().sql())


if __name__ == "__main__":
    main()

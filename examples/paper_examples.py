#!/usr/bin/env python3
"""A guided tour of every worked example in the paper.

For each of Examples 1.1, 3.1, 4.1, 4.2, 4.4, 4.5 and 5.1 this script
shows the query, the view, whether the view is usable, the rewriting the
algorithm produces, and an engine-checked verdict on equivalence.

Run:  python examples/paper_examples.py
"""

from repro import (
    Catalog,
    block_to_sql,
    check_equivalent,
    enumerate_mappings,
    parse_query,
    parse_view,
    table,
    try_rewrite_aggregation,
    try_rewrite_conjunctive,
    try_rewrite_set_semantics,
    view_to_sql,
)


def show(title, catalog, query, view, rewriting, compare="multiset"):
    print("=" * 72)
    print(title)
    print("=" * 72)
    print("\nQuery Q:")
    print(block_to_sql(query))
    print("\nView:")
    print(view_to_sql(view))
    if rewriting is None:
        print("\n=> view NOT usable (as the paper predicts)")
        return
    print("\n=> rewriting Q':")
    print(rewriting.sql())
    counterexample = check_equivalent(
        catalog, query, rewriting, trials=30, domain=3, compare=compare
    )
    verdict = "EQUIVALENT" if counterexample is None else "MISMATCH!"
    print(f"\nengine check on 30 random databases: {verdict}")
    print()


def first_rewriting(query, view, fn, **kwargs):
    many = kwargs.pop("many_to_one", False)
    for mapping in enumerate_mappings(view.block, query, many_to_one=many):
        rewriting = fn(query, view, mapping, **kwargs)
        if rewriting is not None:
            return rewriting
    return None


def example_1_1():
    catalog = Catalog(
        [
            table("Calling_Plans", ["Plan_Id", "Plan_Name"], key=["Plan_Id"]),
            table(
                "Calls",
                ["Call_Id", "Cust_Id", "Plan_Id", "Day", "Month", "Year",
                 "Charge"],
                key=["Call_Id"],
            ),
        ]
    )
    query = parse_query(
        """
        SELECT Calling_Plans.Plan_Id, Plan_Name, SUM(Charge)
        FROM Calls, Calling_Plans
        WHERE Calls.Plan_Id = Calling_Plans.Plan_Id AND Year = 1995
        GROUP BY Calling_Plans.Plan_Id, Plan_Name
        HAVING SUM(Charge) < 1000000
        """,
        catalog,
    )
    view = parse_view(
        """
        CREATE VIEW V1 (Plan_Id, Plan_Name, Month, Year, Monthly_Earnings) AS
        SELECT Calls.Plan_Id, Plan_Name, Month, Year, SUM(Charge)
        FROM Calls, Calling_Plans
        WHERE Calls.Plan_Id = Calling_Plans.Plan_Id
        GROUP BY Calls.Plan_Id, Plan_Name, Month, Year
        """,
        catalog,
    )
    catalog.add_view(view)
    rewriting = first_rewriting(query, view, try_rewrite_aggregation)
    show("Example 1.1 - telephony warehouse (aggregation view)",
         catalog, query, view, rewriting)


def example_3_1():
    catalog = Catalog([table("R1", ["A", "B"]), table("R2", ["C", "D"])])
    query = parse_query(
        "SELECT R1.A, SUM(B) FROM R1, R2 "
        "WHERE R1.A = C AND B = 6 AND D = 6 GROUP BY R1.A",
        catalog,
    )
    view = parse_view(
        "CREATE VIEW V1 (C, D) AS SELECT C, D FROM R1, R2 WHERE A = C AND B = D",
        catalog,
    )
    catalog.add_view(view)
    rewriting = first_rewriting(query, view, try_rewrite_conjunctive)
    show("Example 3.1 - conjunctive view, aggregation query",
         catalog, query, view, rewriting)


def example_4_1():
    catalog = Catalog(
        [table("R1", ["A", "B", "C", "D"]), table("R2", ["E", "F"])]
    )
    query = parse_query(
        "SELECT A, E, COUNT(B) FROM R1, R2 WHERE C = F AND B = D "
        "GROUP BY A, E",
        catalog,
    )
    view = parse_view(
        "CREATE VIEW V1 (A, C, N) AS "
        "SELECT A, C, COUNT(D) FROM R1 WHERE B = D GROUP BY A, C",
        catalog,
    )
    catalog.add_view(view)
    rewriting = first_rewriting(query, view, try_rewrite_aggregation)
    show("Example 4.1 - coalescing subgroups", catalog, query, view, rewriting)


def example_4_2():
    catalog = Catalog(
        [table("R1", ["A", "B", "C", "D"]), table("R2", ["E", "F"])]
    )
    query = parse_query("SELECT A, SUM(E) FROM R1, R2 GROUP BY A", catalog)
    v1 = parse_view(
        "CREATE VIEW V1 (A, B, S) AS SELECT A, B, SUM(C) FROM R1 GROUP BY A, B",
        catalog,
    )
    print("=" * 72)
    print("Example 4.2 - recovery of lost multiplicities")
    print("=" * 72)
    print("\nFirst attempt: view V1 without a COUNT output")
    assert first_rewriting(query, v1, try_rewrite_aggregation) is None
    print("=> NOT usable: the multiplicity of R1's A column is lost\n")

    v2 = parse_view(
        "CREATE VIEW V2 (A, B, S, N) AS "
        "SELECT A, B, SUM(C), COUNT(C) FROM R1 GROUP BY A, B",
        catalog,
    )
    catalog.add_view(v2)
    rewriting = first_rewriting(query, v2, try_rewrite_aggregation)
    show("Example 4.2 (continued) - V2 retains COUNT(C)",
         catalog, query, v2, rewriting)


def example_4_4():
    catalog = Catalog(
        [table("R1", ["A", "B", "C", "D"]), table("R2", ["E", "F"])]
    )
    query = parse_query(
        "SELECT A, E, SUM(B) FROM R1, R2 WHERE B = F GROUP BY A, E", catalog
    )
    view = parse_view(
        "CREATE VIEW V (A, E, F, S) AS "
        "SELECT A, E, F, SUM(B) FROM R1, R2 GROUP BY A, E, F",
        catalog,
    )
    rewriting = first_rewriting(query, view, try_rewrite_aggregation)
    show("Example 4.4 - query constrains an aggregated view column",
         catalog, query, view, rewriting)


def example_4_5():
    catalog = Catalog([table("R1", ["A", "B", "C"])])
    query = parse_query("SELECT A, B FROM R1", catalog)
    view = parse_view(
        "CREATE VIEW V1 (A, B, N) AS "
        "SELECT A, B, COUNT(C) FROM R1 GROUP BY A, B",
        catalog,
    )
    rewriting = first_rewriting(query, view, try_rewrite_aggregation)
    show("Example 4.5 - conjunctive query, aggregation view (Section 4.5)",
         catalog, query, view, rewriting)


def example_5_1():
    catalog = Catalog([table("R1", ["A", "B", "C"], key=["A"])])
    query = parse_query("SELECT A FROM R1 WHERE B = C", catalog)
    view = parse_view(
        "CREATE VIEW V1 (A2, A3) AS "
        "SELECT x.A, y.A FROM R1 x, R1 y WHERE x.B = y.C",
        catalog,
    )
    catalog.add_view(view)
    rewriting = first_rewriting(
        query, view, try_rewrite_set_semantics,
        many_to_one=True, catalog=catalog,
    )
    show("Example 5.1 - keys enable a many-to-1 mapping (Section 5)",
         catalog, query, view, rewriting)


if __name__ == "__main__":
    example_1_1()
    example_3_1()
    example_4_1()
    example_4_2()
    example_4_4()
    example_4_5()
    example_5_1()

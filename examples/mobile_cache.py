#!/usr/bin/env python3
"""Mobile-computing scenario: answer queries from cached results.

The paper's second motivation (Section 1): "in mobile computing
applications the database relations may be stored on a server and be
accessible only via low bandwidth wireless communication ... Locally
cached materialized views of the data, such as the results of previous
queries, may improve the performance of such applications."

A disconnected client holds a :class:`repro.QueryCache` of earlier query
results. Each new query is answered from the cache when the rewriter
finds a *semantic* match — including rollups and filters the earlier
queries never mentioned — and is queued for the server otherwise.

Run:  python examples/mobile_cache.py
"""

import random

from repro import Catalog, Database, QueryCache, table

SCHEMA = [
    table(
        "Flights",
        ["Flight_Id", "Origin", "Dest", "Dep_Hour", "Price"],
        key=["Flight_Id"],
        row_count=5_000,
    ),
]

#: Queries the user ran while connected; their results get cached.
CONNECTED_QUERIES = [
    "SELECT Dest, Dep_Hour, Price FROM Flights WHERE Origin = 'SFO'",
    "SELECT Origin, Dest, MIN(Price), SUM(Price), COUNT(Price) "
    "FROM Flights GROUP BY Origin, Dest",
]

#: Queries issued later, while disconnected.
OFFLINE_QUERIES = {
    "morning SFO fares": """
        SELECT Dest, Price FROM Flights
        WHERE Origin = 'SFO' AND Dep_Hour <= 9
    """,
    "cheapest fare per destination from SFO": """
        SELECT Dest, MIN(Price) FROM Flights
        WHERE Origin = 'SFO' GROUP BY Dest
    """,
    "average fare per origin": """
        SELECT Origin, AVG(Price) FROM Flights GROUP BY Origin
    """,
    "seat map detail (needs the server)": """
        SELECT Flight_Id, Price FROM Flights WHERE Dep_Hour = 7
    """,
}


def make_server_database(catalog: Catalog) -> Database:
    rng = random.Random(5)
    airports = ["SFO", "JFK", "ORD", "LAX", "SEA"]
    rows = [
        (
            i,
            rng.choice(airports),
            rng.choice(airports),
            rng.randint(0, 23),
            rng.randint(80, 900),
        )
        for i in range(2_000)
    ]
    return Database(catalog, {"Flights": rows})


def main() -> None:
    catalog = Catalog(SCHEMA)
    server = make_server_database(catalog)
    cache = QueryCache(catalog)

    print("--- connected: running and caching queries ---")
    for sql in CONNECTED_QUERIES:
        result, _hit = cache.answer(sql, server)
        print(
            f"cached {cache.cached_names[-1]!r}: {len(result)} rows "
            f"(of {len(server.table('Flights'))} in Flights)"
        )

    print("\n--- offline session (base tables unreachable) ---")
    for name, sql in OFFLINE_QUERIES.items():
        answer = cache.try_answer(sql)
        if answer is None:
            print(f"\n[{name}] cache MISS -> queued for the server")
            continue
        verified = answer.multiset_equal(server.execute(sql))
        print(
            f"\n[{name}] cache HIT ({len(answer)} rows, "
            f"verified {'OK' if verified else 'MISMATCH'} against server)"
        )
        rewriting = cache.find_rewriting(sql)
        print(rewriting.sql())

    print(
        f"\ncache stats: {cache.stats.hits} hits, {cache.stats.misses} "
        f"misses ({cache.stats.hit_rate:.0%} hit rate), "
        f"{cache.size_rows} rows held"
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: the paper's Example 1.1, end to end.

A telephone company keeps a huge ``Calls`` fact table and a materialized
monthly-earnings summary ``V1``. The analyst's yearly query can be
answered from the summary alone — the library detects this, rewrites the
query, and the rewritten query runs orders of magnitude faster.

Run:  python examples/quickstart.py
"""

import time

from repro import Catalog, Database, RewriteEngine, block_to_sql, table


def main() -> None:
    # 1. Declare the warehouse schema.
    catalog = Catalog(
        [
            table("Calling_Plans", ["Plan_Id", "Plan_Name"], key=["Plan_Id"],
                  row_count=8),
            table(
                "Calls",
                ["Call_Id", "Cust_Id", "Plan_Id", "Day", "Month", "Year",
                 "Charge"],
                key=["Call_Id"],
                row_count=20_000,
            ),
        ]
    )
    engine = RewriteEngine(catalog)

    # 2. Register the materialized view (paper's V1).
    engine.add_view(
        """
        CREATE VIEW V1 (Plan_Id, Plan_Name, Month, Year, Monthly_Earnings) AS
        SELECT Calls.Plan_Id, Plan_Name, Month, Year, SUM(Charge)
        FROM Calls, Calling_Plans
        WHERE Calls.Plan_Id = Calling_Plans.Plan_Id
        GROUP BY Calls.Plan_Id, Plan_Name, Month, Year
        """,
        row_count=200,
    )

    # 3. The analyst's query (paper's Q).
    query_sql = """
        SELECT Calling_Plans.Plan_Id, Plan_Name, SUM(Charge)
        FROM Calls, Calling_Plans
        WHERE Calls.Plan_Id = Calling_Plans.Plan_Id AND Year = 1995
        GROUP BY Calling_Plans.Plan_Id, Plan_Name
        HAVING SUM(Charge) < 100000
    """
    result = engine.rewrite(query_sql)
    rewriting = result.best()
    assert rewriting is not None

    print("Original query Q:")
    print(block_to_sql(result.query))
    print("\nRewritten query Q' (uses the materialized view):")
    print(rewriting.sql())
    print(f"\nMapping: {rewriting.mapping_desc}")
    print(f"Strategy: {rewriting.strategy}")

    # 4. Show it actually pays off on data.
    from repro.workloads import telephony

    workload = telephony.generate(n_calls=20_000, threshold=100_000, seed=1)
    db = workload.database()
    db.materialize("V1")  # the warehouse maintains V1 incrementally

    start = time.perf_counter()
    answer_original = db.execute(workload.query)
    t_original = time.perf_counter() - start

    engine2 = RewriteEngine(workload.catalog)
    rewriting2 = engine2.rewrite(workload.query).best()
    start = time.perf_counter()
    answer_rewritten = db.execute(
        rewriting2.query, extra_views=rewriting2.extra_views()
    )
    t_rewritten = time.perf_counter() - start

    assert answer_original.multiset_equal(answer_rewritten)
    print(f"\n|Calls| = {workload.calls_rows:,} rows; "
          f"|V1| = {len(db.materialize('V1')):,} rows")
    print(f"original:  {t_original * 1000:8.2f} ms")
    print(f"rewritten: {t_rewritten * 1000:8.2f} ms "
          f"({t_original / t_rewritten:,.0f}x faster, same answers)")
    print("\nAnswer:")
    print(answer_original.to_text())


if __name__ == "__main__":
    main()
